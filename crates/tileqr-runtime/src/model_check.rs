//! Model-check suites for the runtime's lock-free core.
//!
//! Compiled only under `RUSTFLAGS="--cfg tileqr_verify"` (plus `cargo
//! test`): every suite runs a small closed protocol body through the
//! `tileqr-verify` interleaving explorer — preemption-bounded exhaustive
//! DFS first, seeded random sampling beyond it — and asserts the protocol
//! invariant in every explored schedule. The primitives under test are the
//! *real* ones from [`crate::sync`]: the shim alias layer means the deque
//! verified here is byte-for-byte the deque the executor runs.
//!
//! Budgets are overridable from the environment, so CI can dial exploration
//! up without code changes:
//!
//! * `TILEQR_VERIFY_PREEMPTIONS` — preemption bound for the DFS phase
//! * `TILEQR_VERIFY_DFS_MAX` — execution cap for the DFS phase
//! * `TILEQR_VERIFY_SAMPLES` — seeded random schedules after the DFS
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg tileqr_verify" cargo test -p tileqr-runtime --lib model_check
//! ```

use std::sync::Arc;

use tileqr_verify::cell::RaceCell;
use tileqr_verify::model::{Model, Report};
use tileqr_verify::thread;

use crate::sync::{
    CancelCause, CancelToken, ClaimFlag, LazyCondvar, Mutex, OnceSlot, Steal, WorkerDeque,
};

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A model with the environment-configured budgets applied.
fn model(name: &str) -> Model {
    Model::new(name)
        .with_preemption_bound(env_or("TILEQR_VERIFY_PREEMPTIONS", 2) as usize)
        .with_max_dfs_executions(env_or("TILEQR_VERIFY_DFS_MAX", 50_000))
        .with_random_samples(env_or("TILEQR_VERIFY_SAMPLES", 2_000))
}

/// Asserts the exploration did real work and prints the volume (visible
/// with `--nocapture`; the aggregate test below enforces the global floor).
fn summarize(report: &Report) {
    assert!(report.executions > 0);
    println!(
        "model-check: {} executions, {} distinct interleavings, dfs_complete={}",
        report.executions, report.distinct_interleavings, report.dfs_complete
    );
}

// ---------------------------------------------------------------- deque --

/// SPSC handoff with payload: the owner writes a payload cell, then pushes
/// the index; a stealer that obtains the index reads the payload. The
/// deque's fences must carry the happens-before edge — a missing fence
/// shows up as a `RaceCell` data race, a protocol bug as a lost or
/// duplicated index.
#[test]
fn deque_spsc_steal_handoff() {
    const N: usize = 3;
    let report = model("deque-spsc-handoff").check(|| {
        let deque = Arc::new(WorkerDeque::with_capacity(4));
        let payload: Arc<Vec<RaceCell<usize>>> =
            Arc::new((0..N).map(|_| RaceCell::new(0)).collect());
        let (d2, p2) = (Arc::clone(&deque), Arc::clone(&payload));
        let stealer = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 * N {
                match d2.steal() {
                    Steal::Success(i) => {
                        // The payload write must be visible (checker
                        // verifies the happens-before edge on the cell).
                        got.push((i, p2[i].get()));
                    }
                    Steal::Retry | Steal::Empty => {}
                }
            }
            got
        });
        for i in 0..N {
            payload[i].set(100 + i);
            deque.push(i);
        }
        let mut taken: Vec<(usize, usize)> = Vec::new();
        while let Some(i) = deque.pop() {
            taken.push((i, payload[i].get()));
        }
        taken.extend(stealer.join().unwrap());
        // Exactly once, nothing lost, payloads intact.
        let mut ids: Vec<usize> = taken.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..N).collect::<Vec<_>>(), "lost or duplicated index");
        for (i, v) in taken {
            assert_eq!(v, 100 + i, "torn or stale payload for index {i}");
        }
    });
    summarize(&report);
}

/// The classic Chase–Lev corner: one element left, the owner's `pop` races
/// a stealer's `steal`. Exactly one side may win it.
#[test]
fn deque_last_element_pop_vs_steal() {
    let report = model("deque-last-element").check(|| {
        let deque = Arc::new(WorkerDeque::with_capacity(2));
        deque.push(7);
        let d2 = Arc::clone(&deque);
        let stealer = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Steal::Success(v) = d2.steal() {
                    got.push(v);
                }
            }
            got
        });
        let mut got = Vec::new();
        if let Some(v) = deque.pop() {
            got.push(v);
        }
        got.extend(stealer.join().unwrap());
        assert_eq!(
            got,
            vec![7],
            "the single element must be taken exactly once"
        );
    });
    summarize(&report);
}

/// Two concurrent stealers against an owner interleaving pushes and pops.
#[test]
fn deque_two_stealers_exactly_once() {
    const N: usize = 4;
    let report = model("deque-two-stealers").check(|| {
        let deque = Arc::new(WorkerDeque::with_capacity(8));
        let mut stealers = Vec::new();
        for _ in 0..2 {
            let d = Arc::clone(&deque);
            stealers.push(thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..N {
                    if let Steal::Success(v) = d.steal() {
                        got.push(v);
                    }
                }
                got
            }));
        }
        let mut taken = Vec::new();
        for i in 0..N {
            deque.push(i);
            if i % 2 == 1 {
                if let Some(v) = deque.pop() {
                    taken.push(v);
                }
            }
        }
        while let Some(v) = deque.pop() {
            taken.push(v);
        }
        for s in stealers {
            taken.extend(s.join().unwrap());
        }
        taken.sort_unstable();
        assert_eq!(
            taken,
            (0..N).collect::<Vec<_>>(),
            "lost or duplicated index"
        );
    });
    summarize(&report);
}

/// Ring wraparound under concurrent stealing: more indices cycle through
/// than the ring holds, so top/bottom wrap the mask while a stealer races.
#[test]
fn deque_wraparound_under_steal() {
    let report = model("deque-wraparound").check(|| {
        let deque = Arc::new(WorkerDeque::with_capacity(2));
        let d2 = Arc::clone(&deque);
        let stealer = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..6 {
                if let Steal::Success(v) = d2.steal() {
                    got.push(v);
                }
            }
            got
        });
        let mut taken = Vec::new();
        deque.push(0);
        deque.push(1);
        // Pop before each further push so at most 2 ids are ever live and
        // the capacity-2 ring (mask 1) wraps repeatedly. Steals only shrink
        // the deque, so the owner-side bound holds under any interleaving.
        for i in 2..5usize {
            if let Some(v) = deque.pop() {
                taken.push(v);
            }
            deque.push(i);
        }
        while let Some(v) = deque.pop() {
            taken.push(v);
        }
        taken.extend(stealer.join().unwrap());
        taken.sort_unstable();
        assert_eq!(
            taken,
            (0..5).collect::<Vec<_>>(),
            "wraparound lost an index"
        );
    });
    summarize(&report);
}

// --------------------------------------------------------- cancel token --

/// Two racing causes: exactly one `trigger` wins and `cause` reports the
/// winner, never a mix.
#[test]
fn cancel_token_first_cause_wins() {
    let report = model("cancel-first-cause").check(|| {
        let token = CancelToken::new();
        let t2 = token.clone();
        let racer = thread::spawn(move || t2.trigger(CancelCause::DeadlineExceeded));
        let won_stall = token.trigger(CancelCause::Stalled);
        let won_deadline = racer.join().unwrap();
        assert!(
            won_stall ^ won_deadline,
            "exactly one cause must win the trigger race"
        );
        let cause = token.cause().expect("token must be cancelled");
        let expected = if won_stall {
            CancelCause::Stalled
        } else {
            CancelCause::DeadlineExceeded
        };
        assert_eq!(cause, expected, "cause does not match the CAS winner");
        assert!(token.is_cancelled());
    });
    summarize(&report);
}

/// `reset` racing a `trigger`: the token must end in a coherent state —
/// live, or cancelled with the racer's cause — and a trigger after the
/// dust settles must still work.
#[test]
fn cancel_token_reset_vs_trigger() {
    let report = model("cancel-reset-vs-trigger").check(|| {
        let token = CancelToken::new();
        token.cancel();
        let t2 = token.clone();
        let resetter = thread::spawn(move || t2.reset());
        let won = token.trigger(CancelCause::Stalled);
        resetter.join().unwrap();
        match token.cause() {
            None => {
                // The reset landed last; the token is live again.
                assert!(!token.is_cancelled());
            }
            Some(c) => {
                // Either the original user cancel (reset lost to it? no —
                // reset overwrites unconditionally, so a surviving cause
                // means a trigger landed after the reset) or the stall.
                assert!(
                    c == CancelCause::Stalled || c == CancelCause::Cancelled,
                    "unexpected cause {c:?}"
                );
                if won {
                    // The stall trigger only succeeds after the reset; its
                    // cause must then survive to the end.
                    assert_eq!(c, CancelCause::Stalled);
                }
            }
        }
    });
    summarize(&report);
}

// ------------------------------------------------------------ once slot --

/// Producer vs consumer: the untimed `wait` must always be woken — a lost
/// wakeup in the lazy-notify protocol deadlocks the model and is reported
/// with the exact schedule.
#[test]
fn once_slot_set_vs_wait() {
    let report = model("once-slot-set-vs-wait").check(|| {
        let slot: Arc<OnceSlot<usize>> = Arc::new(OnceSlot::new());
        let s2 = Arc::clone(&slot);
        let producer = thread::spawn(move || {
            s2.set(42);
        });
        let v = slot.wait();
        assert_eq!(v, 42);
        producer.join().unwrap();
    });
    summarize(&report);
}

/// The timed variant with a far-future deadline: the scheduler may fire
/// spurious timeout wakes (bounded), after which the waiter re-checks and
/// waits again; the value must still arrive in every schedule.
#[test]
fn once_slot_set_vs_wait_deadline() {
    let report = model("once-slot-wait-deadline").check(|| {
        let slot: Arc<OnceSlot<usize>> = Arc::new(OnceSlot::new());
        let s2 = Arc::clone(&slot);
        let producer = thread::spawn(move || {
            s2.set(9);
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let v = slot.wait_deadline(deadline);
        assert_eq!(v, Some(9), "value lost despite a never-expiring deadline");
        producer.join().unwrap();
    });
    summarize(&report);
}

/// Two producers racing `set`: exactly one wins (the loser's value is
/// dropped), and a waiting consumer sees the winner's value. `set` is
/// guarded by a [`ClaimFlag`] as in the service's resolve paths, mirroring
/// the completion-vs-shutdown race.
#[test]
fn once_slot_competing_producers_exactly_once() {
    let report = model("once-slot-claim-race").check(|| {
        let slot: Arc<OnceSlot<&'static str>> = Arc::new(OnceSlot::new());
        let claim = Arc::new(ClaimFlag::new());
        let (s2, c2) = (Arc::clone(&slot), Arc::clone(&claim));
        let worker = thread::spawn(move || {
            if c2.claim() {
                s2.set("done");
                true
            } else {
                false
            }
        });
        let drained = if claim.claim() {
            slot.set("shutdown");
            true
        } else {
            false
        };
        let resolved = worker.join().unwrap();
        assert!(
            drained ^ resolved,
            "exactly one path must resolve the ticket"
        );
        let v = slot.wait();
        assert!(v == "done" || v == "shutdown");
    });
    summarize(&report);
}

// --------------------------------------------- backpressure handshake --

/// The admission backpressure handshake of the service layer, reduced to
/// its synchronisation skeleton: a submitter blocks (untimed — a lost
/// wakeup is a deadlock, not a slow retry) until a resolver frees a slot
/// and calls `notify_all_if_waiting` *after* leaving the critical section.
#[test]
fn lazy_condvar_backpressure_handshake() {
    struct State {
        space: bool,
        shutdown: bool,
    }
    let report = model("lazy-condvar-backpressure").check(|| {
        let shared = Arc::new((
            Mutex::new(State {
                space: false,
                shutdown: false,
            }),
            LazyCondvar::new(),
        ));
        let s2 = Arc::clone(&shared);
        let resolver = thread::spawn(move || {
            let (lock, cv) = &*s2;
            {
                let mut st = lock.lock();
                st.space = true;
            }
            cv.notify_all_if_waiting();
        });
        let (lock, cv) = &*shared;
        let mut st = lock.lock();
        while !st.space && !st.shutdown {
            st = cv.wait(st);
        }
        assert!(st.space, "submitter woke without space or shutdown");
        st.space = false; // admit
        drop(st);
        resolver.join().unwrap();
    });
    summarize(&report);
}

/// The shutdown-vs-submit race: shutdown flips the flag under the lock and
/// notifies conditionally; a waiting submitter must always wake and observe
/// it (the service returns `ServiceShutdown`), never sleep forever.
#[test]
fn lazy_condvar_shutdown_wakes_submitter() {
    struct State {
        space: bool,
        shutdown: bool,
    }
    let report = model("lazy-condvar-shutdown").check(|| {
        let shared = Arc::new((
            Mutex::new(State {
                space: false,
                shutdown: false,
            }),
            LazyCondvar::new(),
        ));
        let s2 = Arc::clone(&shared);
        let shutter = thread::spawn(move || {
            let (lock, cv) = &*s2;
            lock.lock().shutdown = true;
            cv.notify_all_if_waiting();
        });
        let (lock, cv) = &*shared;
        let mut st = lock.lock();
        while !st.space && !st.shutdown {
            st = cv.wait(st);
        }
        assert!(
            st.shutdown,
            "no space was ever granted, so this is shutdown"
        );
        drop(st);
        shutter.join().unwrap();
    });
    summarize(&report);
}

// ------------------------------------------------------------ claim flag --

/// Three threads race a [`ClaimFlag`]: exactly one wins.
#[test]
fn claim_flag_exactly_once() {
    let report = model("claim-flag").check(|| {
        let flag = Arc::new(ClaimFlag::new());
        let mut racers = Vec::new();
        for _ in 0..2 {
            let f = Arc::clone(&flag);
            racers.push(thread::spawn(move || f.claim()));
        }
        let mut wins = usize::from(flag.claim());
        for r in racers {
            wins += usize::from(r.join().unwrap());
        }
        assert_eq!(wins, 1, "a ClaimFlag must have exactly one winner");
    });
    summarize(&report);
}

// ------------------------------------------------------------ aggregate --

/// Enforces the exploration-volume floor: the combined suites must explore
/// at least 10⁵ distinct interleavings (the checker's coverage claim in the
/// docs). The small protocol models above have tiny *complete* bounded-DFS
/// spaces — re-sampling them cannot yield new schedules — so the floor is
/// carried by a richer model: an owner interleaving pushes and pops against
/// two concurrent stealers under a raised preemption bound, whose bounded
/// schedule space comfortably exceeds the floor; the DFS execution cap,
/// not the space, is the binding limit.
#[test]
fn interleaving_volume_floor() {
    let floor = env_or("TILEQR_VERIFY_VOLUME_FLOOR", 100_000);
    let mut total: u64 = 0;

    let r = Model::new("volume-deque")
        .with_preemption_bound(env_or("TILEQR_VERIFY_PREEMPTIONS", 2) as usize + 2)
        .with_max_dfs_executions(env_or("TILEQR_VERIFY_DFS_MAX", 50_000).max(110_000))
        .with_random_samples(env_or("TILEQR_VERIFY_SAMPLES", 2_000))
        .explore(|| {
            let deque = Arc::new(WorkerDeque::with_capacity(4));
            let stealers: Vec<_> = (0..2)
                .map(|_| {
                    let d = Arc::clone(&deque);
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        for _ in 0..4 {
                            if let Steal::Success(v) = d.steal() {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut taken = Vec::new();
            for i in 0..4usize {
                deque.push(i);
                if i % 2 == 1 {
                    if let Some(v) = deque.pop() {
                        taken.push(v);
                    }
                }
            }
            while let Some(v) = deque.pop() {
                taken.push(v);
            }
            for s in stealers {
                taken.extend(s.join().unwrap());
            }
            taken.sort_unstable();
            assert_eq!(
                taken,
                (0..4).collect::<Vec<_>>(),
                "an index was lost or duplicated"
            );
        });
    assert!(r.failure.is_none(), "{:?}", r.failure);
    summarize(&r);
    total += r.distinct_interleavings;

    let heavy = |name: &str| {
        Model::new(name)
            .with_preemption_bound(env_or("TILEQR_VERIFY_PREEMPTIONS", 2) as usize + 1)
            .with_max_dfs_executions(env_or("TILEQR_VERIFY_DFS_MAX", 50_000))
            .with_random_samples(env_or("TILEQR_VERIFY_SAMPLES", 2_000))
    };

    let r = heavy("volume-once-slot").check(|| {
        let slot: Arc<OnceSlot<usize>> = Arc::new(OnceSlot::new());
        let s2 = Arc::clone(&slot);
        let producer = thread::spawn(move || {
            s2.set(1);
        });
        assert_eq!(slot.wait(), 1);
        producer.join().unwrap();
    });
    summarize(&r);
    total += r.distinct_interleavings;

    let r = heavy("volume-cancel").check(|| {
        let token = CancelToken::new();
        let t2 = token.clone();
        let racer = thread::spawn(move || t2.trigger(CancelCause::DeadlineExceeded));
        let mine = token.trigger(CancelCause::Stalled);
        let theirs = racer.join().unwrap();
        assert!(mine ^ theirs);
    });
    summarize(&r);
    total += r.distinct_interleavings;

    assert!(
        total >= floor,
        "explored {total} distinct interleavings, below the 10^5 floor \
         (raise TILEQR_VERIFY_SAMPLES)"
    );
}
