//! Std-only synchronisation primitives for the runtime.
//!
//! The workspace builds offline, so instead of `parking_lot` and `crossbeam`
//! this module provides the three primitives the executor and the shared
//! factorization state actually need:
//!
//! * [`Mutex`] — a thin wrapper over `std::sync::Mutex` with the
//!   `parking_lot`-style infallible `lock()` API (a poisoned lock means a
//!   kernel panicked on another thread; propagating the panic is the only
//!   sensible response, so the guard just unwraps the poison).
//! * [`Backoff`] — exponential spin-then-yield backoff (the shape of
//!   `crossbeam::utils::Backoff`) used by idle workers at the tail of the
//!   DAG instead of a hot `yield_now` loop.
//! * [`TaskQueue`] — the shared ready queue of task indices. Tasks are tile
//!   kernels costing `O(nb³)` flops, so a locked `VecDeque` (preallocated to
//!   the DAG size: the hot path never grows it) is far below measurement
//!   noise; a lock-free or work-stealing deque is an open ROADMAP item.

use std::collections::VecDeque;

/// Infallible mutex: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison (a panic on another thread is
    /// already propagating through the thread scope).
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Exponential backoff for spin loops: a few busy spins with `spin_loop`
/// hints, then increasingly reluctant `yield_now` snoozes, so idle workers at
/// the tail of the DAG stop burning a core while still reacting quickly when
/// work appears.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff (next snooze is a cheap spin).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets after useful work was found.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off once: `2^step` spin-loop hints while `step` is small, then a
    /// `yield_now` to let the OS run someone else.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past busy spinning; callers can
    /// use it to switch to a heavier waiting strategy if they have one.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

/// Shared FIFO of ready task indices.
///
/// Preallocated to the DAG size so pushes on the hot path never reallocate.
#[derive(Debug)]
pub struct TaskQueue {
    inner: Mutex<VecDeque<usize>>,
}

impl TaskQueue {
    /// Creates a queue with room for `capacity` indices.
    pub fn with_capacity(capacity: usize) -> Self {
        TaskQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Enqueues a ready task.
    #[inline]
    pub fn push(&self, idx: usize) {
        self.inner.lock().push_back(idx);
    }

    /// Dequeues the oldest ready task, if any.
    #[inline]
    pub fn pop(&self) -> Option<usize> {
        self.inner.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn task_queue_is_fifo() {
        let q = TaskQueue::with_capacity(4);
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn task_queue_survives_concurrent_use() {
        let q = std::sync::Arc::new(TaskQueue::with_capacity(1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..256 {
                    q.push(t * 256 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 1024);
    }
}
