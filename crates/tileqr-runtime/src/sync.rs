//! Std-only synchronisation primitives for the runtime.
//!
//! The workspace builds offline, so instead of `parking_lot` and `crossbeam`
//! this module provides the primitives the executor and the shared
//! factorization state actually need:
//!
//! * [`Mutex`] — a thin wrapper over `std::sync::Mutex` with the
//!   `parking_lot`-style infallible `lock()` API (a poisoned lock means a
//!   kernel panicked on another thread; propagating the panic is the only
//!   sensible response, so the guard just unwraps the poison).
//! * [`CancelToken`] — a shared cancellation flag (one atomic) checked by
//!   workers between tasks; carries *why* it fired (user cancel, deadline,
//!   watchdog stall) so the context can report the matching
//!   [`QrError`](crate::context::QrError).
//! * [`OnceSlot`] — a one-shot blocking result cell (the service layer's
//!   per-ticket rendezvous): one producer stores a value exactly once, any
//!   number of consumers block until it lands. The producer skips the
//!   condvar notification entirely when no consumer is waiting, so
//!   resolving a ticket nobody is blocked on costs one mutex round trip
//!   and zero syscalls.
//! * [`Backoff`] — three-tier idle backoff (spin → yield → bounded park)
//!   used by workers that find no runnable task, so an idle pool stops
//!   burning CPU when the tail of the DAG is sequential while still reacting
//!   within a bounded time when work appears.
//! * [`TaskQueue`] — a locked FIFO of task indices with an *exact*
//!   preallocated capacity. It backs the legacy `LockedFifo` scheduler and
//!   serves as the global injector of initially-ready tasks for the
//!   work-stealing schedulers.
//! * [`WorkerDeque`] — a fixed-capacity Chase–Lev work-stealing deque of
//!   task indices: the owning worker pushes and pops at the bottom (LIFO,
//!   cache-warm), other workers steal from the top (FIFO, oldest first).
//!   The buffer is preallocated once, so the hot path never allocates.
//!
//! The deque follows the memory-ordering protocol of Lê, Pop, Cocchini &
//! Zappa Nardelli, *“Correct and Efficient Work-Stealing for Weak Memory
//! Models”* (PPoPP'13) — the same protocol `crossbeam-deque` implements —
//! but stores the elements in `AtomicUsize` cells, which keeps the whole
//! implementation in safe Rust: task indices are plain `usize`s, so atomic
//! cells cost nothing and eliminate every data race by construction.
//!
//! # Model checking and the memory-ordering audit
//!
//! Everything in this module is built on the `shim` alias layer: plain
//! `std::sync` types in normal builds, the `tileqr-verify` model-checking
//! shims under `RUSTFLAGS="--cfg tileqr_verify"`. The suites in
//! `model_check.rs` (compiled only under that cfg) run the deque, the
//! cancel token, the once-slot and the lazy-condvar handshake through every
//! preemption-bounded interleaving plus seeded random sampling.
//!
//! Per-site ordering rationale, audited against the checker's
//! happens-before layer:
//!
//! * [`WorkerDeque`] — verbatim Lê et al. (PPoPP'13): `push` publishes the
//!   element with a **release fence** before the relaxed `bottom` store
//!   (comment at the site explains why a release *store* would be wrong);
//!   `pop` orders its `bottom` decrement against stealers' `top` reads with
//!   a **SeqCst fence**, matched by the SeqCst fence in `steal`; the
//!   `top` CAS in both is SeqCst. The checker verifies the protocol under
//!   SC interleavings and its race detector confirms the fences establish
//!   the element-handoff happens-before edges; it **cannot** justify
//!   downgrading the SeqCst pair, because the weak behaviours a downgrade
//!   admits (the load buffering / IRIW-style executions the PPoPP'13 proof
//!   rules out) are exactly what an SC explorer never exhibits. They stay
//!   SeqCst.
//! * [`CancelToken`] — `trigger` is an AcqRel CAS (first cause wins and the
//!   winner's writes are visible to whoever observes the cause);
//!   `is_cancelled`/`cause` are Acquire loads; `reset` is a Release store.
//! * [`OnceSlot`] / `LazyCondvar` — the waiter counter is incremented
//!   *under the mutex* before the wait releases it, and the notifier reads
//!   it *after* its own critical section, so mutex ordering alone makes the
//!   counter race-free: either the notifier sees the waiter, or the waiter
//!   entered the lock after the notifier and sees the state change itself.
//!   The SeqCst counter orderings are therefore stronger than required —
//!   Relaxed would satisfy the checker — but the counter is touched only on
//!   the blocking slow path, so they are kept as belt and braces.
//! * `ClaimFlag` — `claim` is a `swap(true, AcqRel)`: Acquire so the
//!   single winner observes everything that happened before a racing
//!   loser's attempt, Release so a later observer of the flag sees the
//!   winner's prior writes.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use self::shim::{fence, AtomicIsize, AtomicUsize};

/// Alias layer selecting the synchronisation backend.
///
/// Normal builds re-export `std::sync` primitives, so this module costs
/// nothing. Under `--cfg tileqr_verify` the same names resolve to the
/// `tileqr-verify` shims, which fall through to `std` outside a model but
/// hand every operation to the interleaving explorer inside one. Everything
/// in the runtime that synchronises between threads imports from here, never
/// from `std::sync` directly.
#[cfg(not(tileqr_verify))]
pub(crate) mod shim {
    pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicU64, AtomicUsize};
    pub(crate) use std::sync::{
        Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard,
    };
    use std::time::Duration;

    #[inline]
    pub(crate) fn raw_lock<T>(m: &RawMutex<T>) -> RawMutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn raw_into_inner<T>(m: RawMutex<T>) -> T {
        m.into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[inline]
    pub(crate) fn raw_wait<'a, T>(
        cv: &RawCondvar,
        g: RawMutexGuard<'a, T>,
    ) -> RawMutexGuard<'a, T> {
        cv.wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[inline]
    pub(crate) fn raw_wait_timeout<'a, T>(
        cv: &RawCondvar,
        g: RawMutexGuard<'a, T>,
        dur: Duration,
    ) -> (RawMutexGuard<'a, T>, bool) {
        let (g, r) = cv
            .wait_timeout(g, dur)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (g, r.timed_out())
    }
}

/// See the `cfg(not(tileqr_verify))` twin above.
#[cfg(tileqr_verify)]
pub(crate) mod shim {
    use std::time::Duration;
    pub(crate) use tileqr_verify::sync::atomic::{
        fence, AtomicBool, AtomicIsize, AtomicU64, AtomicUsize,
    };
    pub(crate) use tileqr_verify::sync::{
        Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard,
    };

    #[inline]
    pub(crate) fn raw_lock<T>(m: &RawMutex<T>) -> RawMutexGuard<'_, T> {
        m.lock()
    }

    pub(crate) fn raw_into_inner<T>(m: RawMutex<T>) -> T {
        m.into_inner()
    }

    #[inline]
    pub(crate) fn raw_wait<'a, T>(
        cv: &RawCondvar,
        g: RawMutexGuard<'a, T>,
    ) -> RawMutexGuard<'a, T> {
        cv.wait(g)
    }

    #[inline]
    pub(crate) fn raw_wait_timeout<'a, T>(
        cv: &RawCondvar,
        g: RawMutexGuard<'a, T>,
        dur: Duration,
    ) -> (RawMutexGuard<'a, T>, bool) {
        let (g, r) = cv.wait_timeout(g, dur);
        (g, r.timed_out())
    }
}

/// Infallible mutex: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(shim::RawMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = shim::RawMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(shim::RawMutex::new(value))
    }

    /// Acquires the lock, ignoring poison (a panic on another thread is
    /// already propagating through the thread scope).
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        shim::raw_lock(&self.0)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        shim::raw_into_inner(self.0)
    }
}

/// Infallible condition variable paired with [`Mutex`]: poison is stripped,
/// and `wait_timeout` returns a plain `(guard, timed_out)` pair. Routed
/// through the `shim` layer like every other primitive here.
#[derive(Debug, Default)]
pub(crate) struct Condvar(shim::RawCondvar);

impl Condvar {
    /// A new condition variable.
    pub(crate) const fn new() -> Self {
        Condvar(shim::RawCondvar::new())
    }

    /// Blocks until notified.
    #[inline]
    pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        shim::raw_wait(&self.0, guard)
    }

    /// Blocks until notified or `dur` elapses; the `bool` is true when the
    /// wait timed out.
    #[inline]
    pub(crate) fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        shim::raw_wait_timeout(&self.0, guard, dur)
    }

    /// Wakes one waiter.
    #[inline]
    pub(crate) fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub(crate) fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A condvar whose notifiers can skip the syscall when nobody waits.
///
/// Waiters register in a counter *while holding the mutex* (inside
/// [`LazyCondvar::wait`]/[`LazyCondvar::wait_timeout`], before the wait
/// releases it); a notifier that has since left its own critical section
/// calls [`LazyCondvar::notify_all_if_waiting`], which reads the counter
/// and only touches the condvar when it is nonzero. Mutex ordering makes
/// the handshake lossless: a waiter either incremented the counter before
/// the notifier's critical section (the notifier sees it and notifies) or
/// entered the lock afterwards (and then observes the state change the
/// notification would have signalled, so it never blocks on stale state —
/// provided callers re-check their predicate under the lock before
/// waiting, as every condvar loop must). Model-checked in
/// `model_check.rs`, including the shutdown-vs-submit race.
#[derive(Debug, Default)]
pub(crate) struct LazyCondvar {
    cv: Condvar,
    waiters: AtomicUsize,
}

impl LazyCondvar {
    /// A new lazy condvar with no waiters.
    pub(crate) const fn new() -> Self {
        LazyCondvar {
            cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Blocks until notified; the caller must re-check its predicate.
    pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let guard = self.cv.wait(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        guard
    }

    /// Blocks until notified or `dur` elapses; the `bool` is true when the
    /// wait timed out.
    pub(crate) fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let (guard, timed_out) = self.cv.wait_timeout(guard, dur);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        (guard, timed_out)
    }

    /// Wakes all waiters iff any are registered. Call *after* leaving the
    /// critical section that changed the awaited state.
    #[inline]
    pub(crate) fn notify_all_if_waiting(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            self.cv.notify_all();
        }
    }
}

/// An exactly-once claim: many threads may race to [`ClaimFlag::claim`],
/// exactly one wins. Backs the "resolve each ticket exactly once" guarantee
/// of the streaming paths (a completion and a shutdown drain may race for
/// the same item; whichever claims the flag delivers the outcome).
#[derive(Debug, Default)]
pub(crate) struct ClaimFlag(shim::AtomicBool);

impl ClaimFlag {
    /// A new, unclaimed flag.
    pub(crate) fn new() -> Self {
        ClaimFlag(shim::AtomicBool::new(false))
    }

    /// Attempts the claim; true for exactly one caller.
    #[inline]
    pub(crate) fn claim(&self) -> bool {
        !self.0.swap(true, Ordering::AcqRel)
    }
}

/// Why a runtime job was interrupted; reported through
/// [`QrError`](crate::context::QrError) as the matching variant.
///
/// The first cause to fire wins ([`CancelToken::trigger`] is a
/// compare-and-swap from the live state), so a job that is both cancelled by
/// the user and past its deadline reports whichever condition was observed
/// first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CancelCause {
    /// [`CancelToken::cancel`] was called (user-initiated).
    Cancelled,
    /// A deadline passed while the job was running (or before it started).
    DeadlineExceeded,
    /// The pool watchdog saw no progress for longer than the stall bound.
    Stalled,
}

const CANCEL_LIVE: usize = 0;
const CANCEL_USER: usize = 1;
const CANCEL_DEADLINE: usize = 2;
const CANCEL_STALLED: usize = 3;

/// A shared cancellation flag checked by the runtime between tasks.
///
/// Cloning the token yields another handle to the same flag; cancellation is
/// one atomic store, and the workers' check is one atomic load per task.
/// Obtain one for a running context with
/// [`QrContext::cancel_handle`](crate::context::QrContext::cancel_handle).
///
/// A user cancellation is **sticky**: every subsequent factorization through
/// the same context fails with
/// [`QrError::Cancelled`](crate::context::QrError) until [`CancelToken::reset`]
/// is called. (Deadline and watchdog interruptions are scoped to the one job
/// they fire on — they use a per-job token internally and never poison the
/// context's handle.)
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicUsize>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of the work observing this token. Idempotent;
    /// has no effect if another cause already triggered the token.
    pub fn cancel(&self) {
        self.trigger(CancelCause::Cancelled);
    }

    /// True once any cause has triggered the token.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != CANCEL_LIVE
    }

    /// Returns the token to the live state so the owner can run further
    /// jobs. Only meaningful on a token whose work has already wound down;
    /// in-flight workers that already observed the cancellation still exit.
    pub fn reset(&self) {
        self.state.store(CANCEL_LIVE, Ordering::Release);
    }

    /// Triggers the token with a specific cause; the first cause wins.
    /// Returns true if this call performed the transition.
    pub(crate) fn trigger(&self, cause: CancelCause) -> bool {
        let v = match cause {
            CancelCause::Cancelled => CANCEL_USER,
            CancelCause::DeadlineExceeded => CANCEL_DEADLINE,
            CancelCause::Stalled => CANCEL_STALLED,
        };
        self.state
            .compare_exchange(CANCEL_LIVE, v, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The cause that triggered the token, if any.
    pub(crate) fn cause(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Acquire) {
            CANCEL_USER => Some(CancelCause::Cancelled),
            CANCEL_DEADLINE => Some(CancelCause::DeadlineExceeded),
            CANCEL_STALLED => Some(CancelCause::Stalled),
            _ => None,
        }
    }
}

/// A one-shot blocking result cell.
///
/// The producer calls [`OnceSlot::set`] exactly once; consumers either poll
/// with [`OnceSlot::try_take`] or block in [`OnceSlot::wait`] /
/// [`OnceSlot::wait_deadline`]. The value is *taken* (moved out) by whichever
/// consumer call observes it first — the service layer wraps each slot in a
/// single-owner `Ticket`, so in practice there is exactly one consumer.
///
/// `set` only touches the condvar when a consumer has registered as waiting
/// (via `LazyCondvar`: the waiter registers *under the lock* before the
/// wait releases it, and `set` checks after releasing the lock, so a waiter
/// is either seen by `set` or sees the value itself under the lock — the
/// wakeup cannot be lost). This keeps the resolve path of an un-awaited
/// ticket down to one uncontended mutex round trip, which is what lets the
/// streaming service stay within its overhead budget against the fused
/// batch path.
#[derive(Debug)]
pub struct OnceSlot<V> {
    value: Mutex<Option<V>>,
    cv: LazyCondvar,
}

impl<V> Default for OnceSlot<V> {
    fn default() -> Self {
        OnceSlot::new()
    }
}

impl<V> OnceSlot<V> {
    /// An empty slot.
    pub fn new() -> Self {
        OnceSlot {
            value: Mutex::new(None),
            cv: LazyCondvar::new(),
        }
    }

    /// Stores the value, waking any blocked consumers. Returns `false` (and
    /// drops `value`) if the slot was already filled — the service resolves
    /// every ticket exactly once, so a double set is a caller bug surfaced
    /// by a debug assertion rather than silent replacement.
    pub fn set(&self, value: V) -> bool {
        let stored = {
            let mut slot = self.value.lock();
            if slot.is_some() {
                debug_assert!(false, "OnceSlot::set called twice");
                false
            } else {
                *slot = Some(value);
                true
            }
        };
        if stored {
            self.cv.notify_all_if_waiting();
        }
        stored
    }

    /// Takes the value if it has already landed.
    pub fn try_take(&self) -> Option<V> {
        self.value.lock().take()
    }

    /// True once a value has landed (and has not been taken yet).
    pub fn is_set(&self) -> bool {
        self.value.lock().is_some()
    }

    /// Blocks until the value lands, then takes it.
    pub fn wait(&self) -> V {
        let mut slot = self.value.lock();
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.cv.wait(slot);
        }
    }

    /// Blocks until the value lands or `deadline` passes; takes the value if
    /// it landed in time.
    pub fn wait_deadline(&self, deadline: std::time::Instant) -> Option<V> {
        let mut slot = self.value.lock();
        loop {
            if let Some(v) = slot.take() {
                break Some(v);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break None;
            }
            let (guard, _timed_out) = self.cv.wait_timeout(slot, deadline - now);
            slot = guard;
        }
    }
}

/// Three-tier backoff for idle loops: a few busy spins with `spin_loop`
/// hints, then `yield_now` snoozes, then bounded `park_timeout` sleeps with
/// exponentially growing (capped) timeouts. The park tier is what lets an
/// oversubscribed or many-core pool go truly idle at the sequential tail of
/// a DAG instead of burning every core on yields; the cap bounds the wake-up
/// latency once work reappears.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;
/// Past this step the park timeout stops doubling.
const PARK_LIMIT: u32 = 14;
/// First park duration; doubles each step up to `MAX_PARK_MICROS`.
const BASE_PARK_MICROS: u64 = 20;
/// Upper bound on a single park (keeps worst-case reaction time bounded).
const MAX_PARK_MICROS: u64 = 200;

impl Backoff {
    /// Fresh backoff (next snooze is a cheap spin).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets after useful work was found.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off once: `2^step` spin-loop hints while `step` is small, then
    /// a `yield_now`, then a bounded `park_timeout` whose duration doubles
    /// until it reaches `MAX_PARK_MICROS`. A spurious `unpark` only makes
    /// the sleep shorter, never incorrect — the caller re-checks its
    /// condition on every iteration anyway.
    #[inline]
    pub fn snooze(&mut self) {
        // Inside a model-checker execution real spinning or parking would
        // only burn wall clock (virtual threads advance by schedule points,
        // not time), so a snooze becomes a single yield point.
        #[cfg(tileqr_verify)]
        if tileqr_verify::model::in_model() {
            tileqr_verify::thread::yield_now();
            return;
        }
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step <= YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let micros = (BASE_PARK_MICROS << (self.step - YIELD_LIMIT - 1)).min(MAX_PARK_MICROS);
            std::thread::park_timeout(Duration::from_micros(micros));
        }
        if self.step <= PARK_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past busy spinning and yielding
    /// into the parking tier.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

/// Shared FIFO of ready task indices.
///
/// The capacity passed to [`TaskQueue::with_capacity`] is a hard bound, not
/// a hint: the buffer is reserved exactly once and a debug assertion fires
/// if a push would ever exceed it, so the allocation-free guarantee of the
/// executor hot loop holds for the locked scheduler too. (Callers size the
/// queue to the DAG length; a task index is enqueued at most once, so the
/// bound is structural.)
#[derive(Debug)]
pub struct TaskQueue {
    inner: Mutex<VecDeque<usize>>,
    capacity: usize,
}

impl TaskQueue {
    /// Creates a queue with room for exactly `capacity` indices.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut buf = VecDeque::new();
        buf.reserve_exact(capacity);
        TaskQueue {
            inner: Mutex::new(buf),
            capacity,
        }
    }

    /// Enqueues a ready task.
    ///
    /// Debug-asserts that the queue stays within its preallocated capacity
    /// (a violation means the caller under-sized the queue and the push
    /// would reallocate under the lock).
    #[inline]
    pub fn push(&self, idx: usize) {
        let mut q = self.inner.lock();
        debug_assert!(
            q.len() < self.capacity,
            "TaskQueue capacity {} exceeded — the hot path would reallocate",
            self.capacity
        );
        q.push_back(idx);
    }

    /// Dequeues the oldest ready task, if any.
    #[inline]
    pub fn pop(&self) -> Option<usize> {
        self.inner.lock().pop_front()
    }
}

/// Result of a steal attempt on a [`WorkerDeque`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque was (or appeared) empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying immediately
    /// or moving to another victim are both sensible.
    Retry,
    /// Stole the oldest task.
    Success(usize),
}

/// A fixed-capacity Chase–Lev work-stealing deque of task indices.
///
/// One worker *owns* the deque and is the only caller of
/// [`WorkerDeque::push`] and [`WorkerDeque::pop`] (bottom end, LIFO); any
/// thread may call [`WorkerDeque::steal`] (top end, FIFO). The executor
/// enforces the single-owner discipline by indexing one deque per worker.
/// All methods take `&self`: the cells are atomics, so a violation of the
/// discipline could lose or duplicate a *task index* but can never be a
/// data race.
///
/// The buffer never grows. Capacity is set at construction to the total
/// number of tasks that can ever be live (the DAG length), so `push` checks
/// the bound only by debug assertion.
#[derive(Debug)]
pub struct WorkerDeque {
    /// Next steal position (top end). Monotonically increasing.
    top: AtomicIsize,
    /// Next push position (bottom end). Only the owner writes it.
    bottom: AtomicIsize,
    /// Power-of-two ring buffer of task indices.
    buffer: Box<[AtomicUsize]>,
    mask: usize,
}

impl WorkerDeque {
    /// Creates a deque able to hold at least `capacity` indices at once.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        let buffer: Box<[AtomicUsize]> = (0..cap).map(|_| AtomicUsize::new(0)).collect();
        WorkerDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer,
            mask: cap - 1,
        }
    }

    #[inline]
    fn cell(&self, index: isize) -> &AtomicUsize {
        &self.buffer[index as usize & self.mask]
    }

    /// Pushes a task at the bottom. Owner only.
    #[inline]
    pub fn push(&self, task: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        debug_assert!(
            (b - t) as usize <= self.mask,
            "WorkerDeque capacity {} exceeded — deques must be sized to the DAG",
            self.mask + 1
        );
        self.cell(b).store(task, Ordering::Relaxed);
        // Publish the element before publishing the new bottom. A release
        // *fence* (not a release store): `pop` also writes `bottom` with
        // relaxed stores, which under the C++20 release-sequence rules would
        // sever the synchronizes-with edge of an earlier release store, so a
        // stealer acquiring `bottom` could miss the element write. The fence
        // orders the element store before the bottom store regardless of who
        // wrote `bottom` last — exactly the protocol of Lê et al. (PPoPP'13).
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops the most recently pushed task (LIFO). Owner only.
    #[inline]
    pub fn pop(&self) -> Option<usize> {
        // Empty fast path: the owner is the only pusher, so if it observes
        // `bottom <= top` the deque is empty (top only grows). This skips
        // the SeqCst fence on the idle path, which workers hit continuously
        // while waiting for the DAG tail.
        if self.bottom.load(Ordering::Relaxed) <= self.top.load(Ordering::Relaxed) {
            return None;
        }
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom decrement against the stealers'
        // top reads; without it a stealer and the owner could both take the
        // last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let task = self.cell(b).load(Ordering::Relaxed);
            if t == b {
                // Single element left: race the stealers for it via top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(task);
            }
            Some(task)
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steals the oldest task (FIFO). Any thread.
    #[inline]
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let task = self.cell(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(task)
        } else {
            Steal::Retry
        }
    }

    /// True if the deque currently appears empty (racy, advisory only).
    #[inline]
    pub fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn cancel_token_first_cause_wins_and_reset_revives() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cause(), None);
        assert!(t.trigger(CancelCause::DeadlineExceeded));
        // A later cause does not overwrite the first.
        assert!(!t.trigger(CancelCause::Stalled));
        t.cancel(); // also a no-op now
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
        // Clones share the state.
        let c = t.clone();
        assert!(c.is_cancelled());
        c.reset();
        assert!(!t.is_cancelled());
        t.cancel();
        assert_eq!(c.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn once_slot_set_then_take() {
        let s = OnceSlot::new();
        assert!(!s.is_set());
        assert_eq!(s.try_take(), None);
        assert!(s.set(7));
        assert!(s.is_set());
        assert_eq!(s.try_take(), Some(7));
        assert_eq!(s.try_take(), None);
    }

    #[test]
    fn once_slot_wakes_a_blocked_waiter() {
        let s = Arc::new(OnceSlot::new());
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.wait());
        std::thread::sleep(Duration::from_millis(5));
        assert!(s.set(42));
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn once_slot_wait_deadline_times_out_and_later_succeeds() {
        let s = OnceSlot::new();
        let deadline = std::time::Instant::now() + Duration::from_millis(5);
        assert_eq!(s.wait_deadline(deadline), None::<u32>);
        s.set(9);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        assert_eq!(s.wait_deadline(deadline), Some(9));
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn backoff_park_tier_sleeps_but_stays_bounded() {
        // Drive the backoff deep into the parking tier and check a snooze
        // still returns promptly (bounded park), i.e. the pool can never
        // deadlock waiting for an unpark that nobody sends.
        let mut b = Backoff::new();
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.is_completed());
        let start = std::time::Instant::now();
        b.snooze();
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "parked snooze must be bounded"
        );
    }

    #[test]
    fn task_queue_is_fifo() {
        let q = TaskQueue::with_capacity(4);
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn task_queue_survives_concurrent_use() {
        let q = std::sync::Arc::new(TaskQueue::with_capacity(1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..256 {
                    q.push(t * 256 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "capacity")]
    fn task_queue_rejects_overflow_in_debug() {
        let q = TaskQueue::with_capacity(2);
        q.push(0);
        q.push(1);
        q.push(2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "WorkerDeque capacity")]
    fn deque_rejects_overflow_in_debug() {
        // Capacity is a hard bound: the ring is sized to the DAG and never
        // grows, so pushing `capacity + 1` live items must trip the debug
        // assertion rather than silently overwrite un-stolen slots.
        let d = WorkerDeque::with_capacity(2);
        d.push(0);
        d.push(1);
        d.push(2);
    }

    #[test]
    fn deque_owner_pop_is_lifo() {
        let d = WorkerDeque::with_capacity(8);
        assert_eq!(d.pop(), None);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn deque_steal_is_fifo() {
        let d = WorkerDeque::with_capacity(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.steal(), Steal::Success(2));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn deque_wraps_around_the_ring() {
        let d = WorkerDeque::with_capacity(4);
        // Cycle more items than the capacity through the ring.
        for round in 0..10usize {
            d.push(round * 2);
            d.push(round * 2 + 1);
            assert_eq!(d.steal(), Steal::Success(round * 2));
            assert_eq!(d.pop(), Some(round * 2 + 1));
        }
        assert!(d.is_empty());
    }

    /// The steal-correctness test of the scheduler ISSUE: every pushed index
    /// is popped or stolen exactly once under concurrent stealers, while the
    /// owner interleaves pushes and pops.
    #[test]
    fn deque_every_index_taken_exactly_once_under_concurrent_stealers() {
        const N: usize = 20_000;
        const STEALERS: usize = 3;
        let d = Arc::new(WorkerDeque::with_capacity(N));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..STEALERS {
            let d = d.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }

        // Owner: push every index, popping a few along the way to exercise
        // the owner/stealer race on the last element.
        let mut owner_got = Vec::new();
        for i in 0..N {
            d.push(i);
            if i % 5 == 0 {
                if let Some(v) = d.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);

        let mut seen: HashSet<usize> = HashSet::with_capacity(N);
        for v in owner_got {
            assert!(seen.insert(v), "index {v} taken twice");
        }
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "index {v} taken twice");
            }
        }
        assert_eq!(seen.len(), N, "some indices were lost");
    }
}
