//! Multicore runtime for the tiled QR factorization.
//!
//! This crate plays the role of PLASMA's dynamic scheduler in the paper's
//! experiments: it takes the weighted task DAG produced by `tileqr-core`
//! (for any elimination tree and either kernel family) and executes it with
//! the real floating-point kernels of `tileqr-kernels`, either sequentially
//! or on a pool of worker threads with dependency-driven scheduling.
//!
//! * [`executor`] — a generic dependency-counting DAG executor (sequential
//!   and multi-threaded variants) with a pluggable ready-task
//!   [`Scheduler`](executor::Scheduler): a legacy locked FIFO, per-worker
//!   Chase–Lev work-stealing deques, and priority work stealing driven by
//!   weighted critical-path-to-exit lengths
//!   ([`TaskDag::priorities`](tileqr_core::dag::TaskDag::priorities)).
//!   Every worker thread gets its own preallocated kernel
//!   [`Workspace`](tileqr_kernels::Workspace), so the per-task hot loop
//!   never touches the allocator under any scheduler.
//! * [`sync`] — std-only synchronisation primitives (mutex, three-tier
//!   spin/yield/park backoff, exact-capacity ready queue, Chase–Lev
//!   work-stealing deque) used by the executor, the pool and the state.
//! * [`state`] — the shared factorization state: lock-protected tiles plus
//!   the per-tile `T` factors (preallocated up front), and the mapping from
//!   a [`TaskKind`] to the corresponding kernel call.
//! * [`context`] — the **session API** and the recommended entry point for
//!   services: a long-lived [`QrContext`] owning a persistent, parkable
//!   worker pool, reusable shape-keyed [`QrPlan`]s (elimination list, DAG,
//!   priorities and workspaces precomputed once), typed [`QrError`]s instead
//!   of panics, and an in-place [`QrContext::factorize_into`] path over
//!   caller-owned tile storage. **Batching**: `k` independent matrices of
//!   one shape submit as a *single fused pool job* through
//!   [`QrContext::factorize_batch`] / [`QrContext::factorize_batch_into`]
//!   (one worker wake-up for the whole batch, work stealing balancing
//!   across matrices, per-item errors isolated), and each consumed result's
//!   `T`-factor storage recycles through [`QrPlan::recycle`] /
//!   [`QrPlan::recycle_reflectors`], cutting the steady-state batch loop
//!   down to a constant *count* of per-call bookkeeping allocations — none
//!   per task, tile or `T` factor.
//! * [`driver`] — one-shot convenience wrappers over the session API:
//!   [`driver::qr_factorize`], [`driver::qr_factorize_parallel`] and the
//!   [`driver::QrFactorization`] handle (extract `R`, apply `Q`/`Qᴴ`, build
//!   `Q` explicitly, residuals).
//! * [`solve`] — linear least-squares solve on top of the tiled QR, the
//!   motivating application of the paper's introduction (one-shot,
//!   context/plan-based and service-routed variants).
//! * [`service`] — the **streaming multi-tenant service layer** (see
//!   below): a [`QrService`](service::QrService) in front of one context,
//!   with bounded admission, per-tenant fairness, load shedding and
//!   transient-fault retry.
//!
//! # Service layer
//!
//! `QrService` turns the session API into a long-running, multi-tenant
//! front end. Many concurrent [`QrClient`](service::QrClient) handles
//! submit dense matrices; each accepted submission returns a
//! [`Ticket`](service::Ticket) that resolves with that matrix's `Result`
//! the moment its last task retires — per-item streaming out of fused
//! pool jobs, not join-the-whole-batch. The overload surface is typed and
//! first-class:
//!
//! * **Bounded admission & backpressure** — the submission queue is
//!   bounded; [`QrClient::submit`](service::QrClient::submit) fast-fails
//!   with the retriable [`QrError::QueueFull`] while
//!   [`QrClient::submit_within`](service::QrClient::submit_within) blocks
//!   for admission up to a deadline.
//! * **Fairness & quotas** — every client is a tenant with its own FIFO
//!   lane and unresolved-item quota; the dispatcher dequeues lanes with a
//!   deficit round-robin weighted by DAG size, so one hot tenant gets a
//!   proportional share instead of starving the rest.
//! * **Load shedding** — past a configured queue depth, new
//!   [`Priority::Low`](service::Priority) work is shed at admission with
//!   `QueueFull` instead of letting the tail latency of everything
//!   collapse.
//! * **Retry** — transient per-item faults ([`QrError::is_transient`]:
//!   `TaskPanicked`, `Stalled`) re-run with bounded attempts and
//!   decorrelated-jitter backoff; deterministic errors (`ShapeMismatch`
//!   at submit, `NonFiniteInput` at dispatch) never retry.
//! * **Shutdown ordering** — shutdown wakes blocked submitters
//!   ([`QrError::ServiceShutdown`]), drains the in-flight job with real
//!   outcomes, then resolves every queued/awaiting-retry ticket with
//!   `ServiceShutdown`; no ticket is ever leaked, even if the dispatcher
//!   panics.
//!
//! See the [`service`] module docs for the full semantics and
//! `examples/service_stream.rs` for a multi-client open-loop demo.
//!
//! # Robustness & error handling
//!
//! The runtime is built to degrade per *item*, not per *pool* — one poisoned
//! matrix in a fused batch must not take down its siblings, and no call may
//! hang forever. The pieces:
//!
//! **The [`QrError`] taxonomy.** Configuration and input errors are reported
//! before any kernel runs: [`QrError::WideMatrix`], [`QrError::ZeroTileSize`]
//! (plan construction), [`QrError::ZeroThreads`] /
//! [`QrError::TooManyThreads`] / [`QrError::ThreadSpawn`] (context
//! construction — thread-spawn failure is a typed error, not a panic),
//! [`QrError::ShapeMismatch`] / [`QrError::PlanMismatch`] /
//! [`QrError::RhsLength`] (per-call input checks) and the opt-in
//! [`QrError::NonFiniteInput`] ([`QrConfig::check_finite`] scans for NaN/Inf
//! so bad inputs fail fast instead of silently producing garbage factors).
//! Runtime faults are reported per batch item: [`QrError::TaskPanicked`]
//! (a kernel panicked while factorizing that item),
//! [`QrError::Cancelled`], [`QrError::DeadlineExceeded`] and
//! [`QrError::Stalled`].
//!
//! **Panic containment.** Inside the session API every kernel task runs
//! under `catch_unwind`: a panic marks only that task's batch copy failed
//! (its remaining tasks are skipped — counted as released, never executed)
//! while sibling items run to completion, the pool survives, and the failed
//! item returns [`QrError::TaskPanicked`] carrying the panicking task's kind
//! and message. When several workers panic at once, the surplus payloads
//! are *counted* and the count is surfaced instead of being dropped
//! silently. The legacy free functions ([`qr_factorize`] & co.) keep their
//! documented panicking contract — they re-raise the contained error — and
//! the scoped executor ([`executor`]) keeps its abort-and-propagate
//! behavior. A failed item's output buffers hold partial garbage and must
//! be refilled; input-rejected items (shape, finiteness) are bitwise
//! untouched.
//!
//! **Cancellation, deadlines, watchdog.** [`QrContext::cancel_handle`]
//! returns a sticky, cloneable [`CancelToken`] checked between tasks;
//! `*_with_deadline` entry-point variants bound wall-clock time; and
//! [`QrContext::with_watchdog`] arms a pool watchdog that watches per-worker
//! heartbeat counters from the submitting thread and cancels a job whose
//! workers stop retiring tasks past the bound ([`QrError::Stalled`]) instead
//! of hanging the caller. Batches report partial results: items that
//! finished before the trigger still return `Ok`. All clock reads happen on
//! the submitting thread — the per-task cost of the whole robustness layer
//! is a handful of relaxed atomic operations.
//!
//! **Deterministic fault injection** (`--features fault-injection`,
//! default-off, zero-cost when disabled). The `fault` module installs a
//! seeded `FaultPlan` injecting panics and delays at chosen `(copy, task)`
//! boundaries, driving the chaos stress suite: a hundred seeded fault
//! schedules across shapes and schedulers, asserting every non-faulted item
//! stays bitwise identical to its fault-free factorization and every
//! faulted item reports the right error.
//!
//! # Concurrency invariants & verification
//!
//! The lock-free core of the runtime rests on a small set of invariants,
//! each of which is *checked mechanically*, not just argued in comments:
//!
//! * **Chase–Lev deque** ([`sync::WorkerDeque`]) — every pushed index is
//!   popped or stolen exactly once; the single-element owner/stealer race
//!   resolves via the `SeqCst` compare-exchange on `top`; capacity is a
//!   hard bound (exceeding it trips a `debug_assert`, the ring never
//!   grows). The required `SeqCst` fences follow Lê et al. (PPoPP '13);
//!   each ordering in `sync.rs` carries an audit comment saying which
//!   reordering it forbids.
//! * **Ready queue** ([`sync::TaskQueue`]) — exact-capacity MPMC ring:
//!   slots hand over via per-slot sequence numbers, so an index is consumed
//!   exactly once and the queue never reports empty while a completed push
//!   is unconsumed.
//! * **Dependency counting** (executor/pool) — a task becomes ready exactly
//!   when its last dependency retires; the release-store/acquire-load pair
//!   on the remaining-dependency counter publishes the predecessor's tile
//!   writes to whichever worker picks the task up.
//! * **Once-slots and parking** — `OnceSlot` publishes at most one value;
//!   the three-tier backoff never parks a worker that has been signalled.
//!
//! Two in-tree verification layers check these claims on every CI run:
//!
//! 1. **Model checking.** Building with `RUSTFLAGS="--cfg tileqr_verify"`
//!    swaps the primitives in [`sync`] onto the deterministic shims of the
//!    `tileqr-verify` crate — a loom-style model checker exploring thread
//!    interleavings (bounded-preemption DFS plus seeded random sampling)
//!    while tracking happens-before. The `model_check` module (compiled
//!    only under that cfg) then exhaustively checks small instances of the
//!    deque, queue, once-slot, backoff and dependency-counter protocols,
//!    and replays any failing schedule deterministically:
//!
//!    ```text
//!    RUSTFLAGS="--cfg tileqr_verify" cargo test -p tileqr-runtime --lib model_check
//!    ```
//!
//! 2. **Static plan analysis.** Independently of the runtime, the
//!    `tileqr_core::footprint` analyzer proves every schedulable plan
//!    (all elimination algorithms × kernel families × a broad shape sweep)
//!    free of RAW/WAR/WAW hazards at tile-region granularity: any two
//!    conflicting kernel accesses are ordered by a DAG path, so the
//!    executor above — which is correct for *any* DAG — never runs two
//!    conflicting kernels concurrently. `cargo run -p tileqr-core --bin
//!    tileqr-analyze` is the CI gate; it exits non-zero on any hazard.
//!
//! Normal builds are untouched: the shim layer is a `cfg` alias, so the
//! release executor compiles to exactly the same std/atomic code as before.
//!
//! [`TaskKind`]: tileqr_core::TaskKind
//! [`QrError::WideMatrix`]: context::QrError::WideMatrix
//! [`QrError::ZeroTileSize`]: context::QrError::ZeroTileSize
//! [`QrError::ZeroThreads`]: context::QrError::ZeroThreads
//! [`QrError::TooManyThreads`]: context::QrError::TooManyThreads
//! [`QrError::ThreadSpawn`]: context::QrError::ThreadSpawn
//! [`QrError::ShapeMismatch`]: context::QrError::ShapeMismatch
//! [`QrError::PlanMismatch`]: context::QrError::PlanMismatch
//! [`QrError::RhsLength`]: context::QrError::RhsLength
//! [`QrError::NonFiniteInput`]: context::QrError::NonFiniteInput
//! [`QrError::TaskPanicked`]: context::QrError::TaskPanicked
//! [`QrError::Cancelled`]: context::QrError::Cancelled
//! [`QrError::DeadlineExceeded`]: context::QrError::DeadlineExceeded
//! [`QrError::Stalled`]: context::QrError::Stalled
//! [`QrConfig::check_finite`]: driver::QrConfig::check_finite
//! [`QrContext::cancel_handle`]: context::QrContext::cancel_handle
//! [`QrContext::with_watchdog`]: context::QrContext::with_watchdog
//! [`qr_factorize`]: driver::qr_factorize
//! [`QrContext::factorize_into`]: context::QrContext::factorize_into
//! [`QrContext::factorize_batch`]: context::QrContext::factorize_batch
//! [`QrContext::factorize_batch_into`]: context::QrContext::factorize_batch_into
//! [`QrPlan::recycle`]: context::QrPlan::recycle
//! [`QrPlan::recycle_reflectors`]: context::QrPlan::recycle_reflectors

#![warn(missing_docs)]

pub mod context;
pub mod driver;
pub mod executor;
#[cfg(feature = "fault-injection")]
pub mod fault;
#[cfg(all(test, tileqr_verify))]
mod model_check;
mod pool;
pub mod service;
pub mod solve;
pub mod state;
pub mod sync;
pub mod trace;

pub use context::{QrContext, QrError, QrPlan, QrReflectors};
pub use driver::{
    qr_factorize, qr_factorize_parallel, QrConfig, QrFactorization, DEFAULT_INNER_BLOCK,
};
pub use executor::SchedulerKind;
pub use service::{
    Priority, QrClient, QrService, RetryPolicy, ServiceConfig, ServiceStats, Ticket,
};
pub use solve::{least_squares_solve, least_squares_solve_via, least_squares_solve_with};
pub use sync::CancelToken;
pub use trace::{ExecutionTrace, TraceSummary, WorkerTrace};
