//! Multicore runtime for the tiled QR factorization.
//!
//! This crate plays the role of PLASMA's dynamic scheduler in the paper's
//! experiments: it takes the weighted task DAG produced by `tileqr-core`
//! (for any elimination tree and either kernel family) and executes it with
//! the real floating-point kernels of `tileqr-kernels`, either sequentially
//! or on a pool of worker threads with dependency-driven scheduling.
//!
//! * [`executor`] — a generic dependency-counting DAG executor (sequential
//!   and multi-threaded variants) with a pluggable ready-task
//!   [`Scheduler`](executor::Scheduler): a legacy locked FIFO, per-worker
//!   Chase–Lev work-stealing deques, and priority work stealing driven by
//!   weighted critical-path-to-exit lengths
//!   ([`TaskDag::priorities`](tileqr_core::dag::TaskDag::priorities)).
//!   Every worker thread gets its own preallocated kernel
//!   [`Workspace`](tileqr_kernels::Workspace), so the per-task hot loop
//!   never touches the allocator under any scheduler.
//! * [`sync`] — std-only synchronisation primitives (mutex, three-tier
//!   spin/yield/park backoff, exact-capacity ready queue, Chase–Lev
//!   work-stealing deque) used by the executor, the pool and the state.
//! * [`state`] — the shared factorization state: lock-protected tiles plus
//!   the per-tile `T` factors (preallocated up front), and the mapping from
//!   a [`TaskKind`] to the corresponding kernel call.
//! * [`context`] — the **session API** and the recommended entry point for
//!   services: a long-lived [`QrContext`] owning a persistent, parkable
//!   worker pool, reusable shape-keyed [`QrPlan`]s (elimination list, DAG,
//!   priorities and workspaces precomputed once), typed [`QrError`]s instead
//!   of panics, and an in-place [`QrContext::factorize_into`] path over
//!   caller-owned tile storage. **Batching**: `k` independent matrices of
//!   one shape submit as a *single fused pool job* through
//!   [`QrContext::factorize_batch`] / [`QrContext::factorize_batch_into`]
//!   (one worker wake-up for the whole batch, work stealing balancing
//!   across matrices, per-item errors isolated), and each consumed result's
//!   `T`-factor storage recycles through [`QrPlan::recycle`] /
//!   [`QrPlan::recycle_reflectors`], cutting the steady-state batch loop
//!   down to a constant *count* of per-call bookkeeping allocations — none
//!   per task, tile or `T` factor.
//! * [`driver`] — one-shot convenience wrappers over the session API:
//!   [`driver::qr_factorize`], [`driver::qr_factorize_parallel`] and the
//!   [`driver::QrFactorization`] handle (extract `R`, apply `Q`/`Qᴴ`, build
//!   `Q` explicitly, residuals).
//! * [`solve`] — linear least-squares solve on top of the tiled QR, the
//!   motivating application of the paper's introduction (one-shot and
//!   context/plan-based variants).
//!
//! [`TaskKind`]: tileqr_core::TaskKind
//! [`QrContext::factorize_into`]: context::QrContext::factorize_into
//! [`QrContext::factorize_batch`]: context::QrContext::factorize_batch
//! [`QrContext::factorize_batch_into`]: context::QrContext::factorize_batch_into
//! [`QrPlan::recycle`]: context::QrPlan::recycle
//! [`QrPlan::recycle_reflectors`]: context::QrPlan::recycle_reflectors

#![warn(missing_docs)]

pub mod context;
pub mod driver;
pub mod executor;
mod pool;
pub mod solve;
pub mod state;
pub mod sync;
pub mod trace;

pub use context::{QrContext, QrError, QrPlan, QrReflectors};
pub use driver::{
    qr_factorize, qr_factorize_parallel, QrConfig, QrFactorization, DEFAULT_INNER_BLOCK,
};
pub use executor::SchedulerKind;
pub use solve::{least_squares_solve, least_squares_solve_with};
pub use trace::{ExecutionTrace, TraceSummary, WorkerTrace};
