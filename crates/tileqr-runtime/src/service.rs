//! Streaming multi-tenant factorization service on top of the session API.
//!
//! A [`QrService`] owns one [`QrContext`] and accepts submissions from many
//! concurrent [`QrClient`] handles. Each accepted submission returns a
//! [`Ticket`] that resolves with that matrix's `Result` **the moment its
//! last task retires** — items stream out of fused pool jobs individually
//! instead of joining at batch boundaries (the generalized per-item
//! completion hook of
//! [`FaultSink::task_retired`](crate::executor::FaultSink)).
//!
//! # Admission & backpressure
//!
//! The submission queue is bounded ([`ServiceConfig::queue_capacity`]).
//! [`QrClient::submit`] is the fast-fail path: a full queue, a shed
//! priority class or an exhausted per-client quota returns
//! [`QrError::QueueFull`] immediately — a *retriable* signal to back off
//! and resubmit. [`QrClient::submit_within`] is the blocking path: it waits
//! for admission up to a deadline, returning `QueueFull` only if space
//! never opened in time. Deterministic input errors are split across the
//! two natural boundaries: a wrong shape is rejected **at submit** (it is
//! metadata, checked in O(1)), while the opt-in non-finite scan runs at
//! dispatch and resolves the ticket with [`QrError::NonFiniteInput`] —
//! never retried.
//!
//! # Fairness & shedding
//!
//! Every client handle created by [`QrService::client`] is an independent
//! tenant with its own FIFO lane and in-flight quota
//! ([`ServiceConfig::per_client_quota`] bounds queued + running + awaiting
//! retry). The dispatcher dequeues lanes with a deficit round-robin: each
//! non-empty lane accrues a quantum equal to **its own** head-of-line task
//! count (so every lane can always afford its next item, and a tenant
//! running large plans never inflates a small-plan tenant's budget) and
//! spends it on its queued items' DAG sizes — a tenant flooding the queue
//! gets a proportional share, not the whole pool.
//! Under saturation ([`ServiceConfig::shed_threshold`] queued or more),
//! new [`Priority::Low`] work is shed at admission with `QueueFull`
//! (counted in [`ServiceStats::shed`]) so latency-sensitive work keeps a
//! bounded queue ahead of it; `Normal`/`High` admission is bounded only by
//! `queue_capacity`.
//!
//! # Mixed-plan fused groups
//!
//! A fused group may span **different plans** — shapes, tile sizes and
//! elimination trees. The runtime maps each global task id `g` to
//! `(copy, local)` through a per-item offset table: copy `i` owns the
//! contiguous id range `[offset[i], offset[i+1])` where `offset` is the
//! prefix sum of the items' DAG sizes, so `copy = partition_point(offset,
//! ≤ g) − 1` and `local = g − offset[copy]`. Successor release, priority
//! ranking and `T`-factor recycling all follow that per-copy contract,
//! and the group's worker workspaces are sized by its largest tile order.
//! Same-plan groups collapse to the historical uniform mapping
//! `g → (g / n, g % n)` and execute bitwise-identically to the
//! single-plan service. Per-item tiling happens *inside* the fused job
//! (the first worker to touch a copy tiles its dense input), so the
//! dispatcher thread stays responsive regardless of group size.
//!
//! # Retry
//!
//! Items that fail with a *transient* error ([`QrError::is_transient`]:
//! `TaskPanicked`, `Stalled`) are re-run up to
//! [`RetryPolicy::max_retries`] times with decorrelated-jitter backoff
//! (`delay = min(max_delay, rand(base_delay, 3 × previous))`). The dense
//! input is retained until resolution, so every attempt re-tiles from the
//! pristine matrix. Deterministic errors (`ShapeMismatch`,
//! `NonFiniteInput`, cancellation causes) are **never** retried. Each
//! attempt runs under fresh fault-injection probe coordinates
//! ([`probe_id`]), so a seeded chaos schedule can fault attempt 0 and
//! spare attempt 1.
//!
//! # Shutdown ordering
//!
//! [`QrService::shutdown`] (also run on drop) marks the service closed,
//! wakes every blocked submitter (they return
//! [`QrError::ServiceShutdown`]), lets the in-flight fused job drain —
//! running items resolve with their real outcome — and then resolves every
//! still-queued or awaiting-retry item with `ServiceShutdown`. No ticket
//! is ever leaked: every accepted submission's ticket resolves exactly
//! once, in every outcome, including a dispatcher panic (a drain guard
//! performs the same sweep on unwind).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tileqr_matrix::rng::Rng;
use tileqr_matrix::{Matrix, Scalar};

use crate::context::{ItemSink, QrContext, QrError, QrPlan, StreamEntry, StreamInput};
use crate::driver::QrFactorization;
use crate::sync::shim::{AtomicU64, AtomicUsize};
use crate::sync::{Condvar, LazyCondvar, Mutex, OnceSlot};

/// Probe-id stride between retry attempts of one submission.
///
/// Attempt `k` of the submission with sequence number `seq` probes the
/// fault-injection plan at copy coordinate [`probe_id`]`(seq, k)` `= seq +
/// k · RETRY_PROBE_STRIDE`, so a seeded chaos schedule can fault specific
/// attempts of specific items (e.g. fail attempts 0 and 1, let attempt 2
/// succeed) even though concurrent submission order is nondeterministic.
pub const RETRY_PROBE_STRIDE: u64 = 1 << 40;

/// The fault-injection probe coordinate of attempt `attempt` of the
/// submission with sequence number `seq` (see [`RETRY_PROBE_STRIDE`]).
pub fn probe_id(seq: u64, attempt: u32) -> usize {
    (seq + u64::from(attempt) * RETRY_PROBE_STRIDE) as usize
}

/// Admission priority of a submission. Priority affects **load shedding
/// only** — it never reorders execution among admitted items (fairness is
/// per-client, not per-priority).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first: rejected at admission once the queue reaches
    /// [`ServiceConfig::shed_threshold`].
    Low,
    /// Admitted until the queue is full.
    #[default]
    Normal,
    /// Admitted until the queue is full; use with
    /// [`QrClient::submit_within`] for work that should wait out a burst
    /// rather than shed.
    High,
}

/// Bounded-retry policy for transient faults (see the
/// [module docs](self#retry)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-runs after the initial attempt (0 disables retry). An item that
    /// exhausts its retries resolves with the *last* attempt's error.
    pub max_retries: u32,
    /// Lower bound of every backoff draw.
    pub base_delay: Duration,
    /// Upper bound of every backoff draw.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Tuning knobs of a [`QrService`]; start from `ServiceConfig::default()`
/// and override with the `with_*` builders. Out-of-range values are
/// clamped to sane bounds at service construction (capacity and quota to
/// at least 1, the shed threshold to at most the capacity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Hard bound on queued (admitted, not yet dispatched) submissions.
    pub queue_capacity: usize,
    /// Queue depth at which new [`Priority::Low`] work is shed.
    pub shed_threshold: usize,
    /// Per-client bound on unresolved items (queued + running + awaiting
    /// retry).
    pub per_client_quota: usize,
    /// Largest number of same-plan items fused into one pool job per
    /// dispatch round — bounds how long a round can keep the dispatcher
    /// busy before it re-examines the queue.
    pub max_group: usize,
    /// Bounded coalescing window: with a non-zero linger, a dispatch round
    /// whose queue holds fewer than [`ServiceConfig::max_group`] items
    /// waits up to this long for more arrivals before launching the fused
    /// job, trading that much added latency for full-width groups (fewer
    /// pool wake-ups and join tails per item). Zero — the default —
    /// dispatches immediately.
    pub linger: Duration,
    /// Transient-fault retry policy.
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            shed_threshold: 192,
            per_client_quota: 128,
            max_group: 8,
            linger: Duration::ZERO,
            retry: RetryPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// [`ServiceConfig::queue_capacity`] builder.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// [`ServiceConfig::shed_threshold`] builder. Setting it equal to the
    /// queue capacity disables priority shedding.
    pub fn with_shed_threshold(mut self, threshold: usize) -> Self {
        self.shed_threshold = threshold;
        self
    }

    /// [`ServiceConfig::per_client_quota`] builder.
    pub fn with_client_quota(mut self, quota: usize) -> Self {
        self.per_client_quota = quota;
        self
    }

    /// [`ServiceConfig::max_group`] builder.
    pub fn with_max_group(mut self, max_group: usize) -> Self {
        self.max_group = max_group;
        self
    }

    /// [`ServiceConfig::linger`] builder.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// [`ServiceConfig::retry`] builder.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    fn clamped(mut self) -> Self {
        self.queue_capacity = self.queue_capacity.max(1);
        self.shed_threshold = self.shed_threshold.min(self.queue_capacity);
        self.per_client_quota = self.per_client_quota.max(1);
        self.max_group = self.max_group.max(1);
        self
    }
}

/// Monotonic lifetime counters of a [`QrService`]
/// ([`QrService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected at admission (full queue, shed, quota,
    /// blocking-submit deadline) — [`ServiceStats::shed`] is the
    /// priority-shed subset.
    pub rejected: u64,
    /// Rejections due to priority shedding specifically.
    pub shed: u64,
    /// Tickets resolved `Ok`.
    pub completed: u64,
    /// Tickets resolved `Err` (including `ServiceShutdown` drains).
    pub failed: u64,
    /// Retry attempts scheduled after transient faults.
    pub retries: u64,
    /// Fused groups launched by the dispatcher.
    pub groups: u64,
    /// Items those groups carried (`group_items / groups` = average fused
    /// width — the mixed-plan fusing payoff in one number).
    pub group_items: u64,
    /// Groups that fused items of at least two distinct plans.
    pub mixed_groups: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
}

/// The streaming result handle of one accepted submission: resolves
/// exactly once with the matrix's [`QrFactorization`] or its typed error.
/// Dropping an unresolved ticket is safe — the service still runs (or
/// drains) the item; only the result is discarded.
pub struct Ticket<T: Scalar<Real = f64>> {
    seq: u64,
    slot: Arc<OnceSlot<Result<QrFactorization<T>, QrError>>>,
}

impl<T: Scalar<Real = f64>> Ticket<T> {
    /// The submission's service-wide sequence number (assigned at
    /// admission, dense over accepted submissions) — the key fault
    /// schedules use to address this item ([`probe_id`]).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True once the result is available ([`Ticket::wait`] will not
    /// block).
    pub fn is_ready(&self) -> bool {
        self.slot.is_set()
    }

    /// Blocks until the item resolves and returns its outcome.
    pub fn wait(self) -> Result<QrFactorization<T>, QrError> {
        self.slot.wait()
    }

    /// [`Ticket::wait`] bounded by `timeout`: the outcome if the item
    /// resolved in time, otherwise the ticket itself back, still valid.
    #[allow(clippy::result_large_err)]
    pub fn wait_for(
        self,
        timeout: Duration,
    ) -> Result<Result<QrFactorization<T>, QrError>, Ticket<T>> {
        match self.slot.wait_deadline(Instant::now() + timeout) {
            Some(outcome) => Ok(outcome),
            None => Err(self),
        }
    }
}

impl<T: Scalar<Real = f64>> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("seq", &self.seq)
            .field("ready", &self.slot.is_set())
            .finish()
    }
}

/// One accepted submission, retained until its ticket resolves (the dense
/// input survives across retry attempts so every attempt re-tiles from
/// pristine values).
struct PendingItem<T: Scalar<Real = f64>> {
    seq: u64,
    client: u64,
    attempt: u32,
    prev_delay: Duration,
    /// Shared with the in-flight job (the first worker to touch the copy
    /// tiles from it — see [`run_group`]) while the service retains it for
    /// potential retries.
    a: Arc<Matrix<T>>,
    plan: Arc<QrPlan<T>>,
    slot: Arc<OnceSlot<Result<QrFactorization<T>, QrError>>>,
}

/// One tenant's FIFO lane plus its deficit-round-robin balance.
struct ClientLane<T: Scalar<Real = f64>> {
    client: u64,
    deficit: usize,
    items: VecDeque<PendingItem<T>>,
}

/// Everything guarded by the service's one mutex.
struct ServiceInner<T: Scalar<Real = f64>> {
    lanes: Vec<ClientLane<T>>,
    /// Round-robin scan position over `lanes` (modulo the current length).
    rr_cursor: usize,
    /// Total queued items across lanes (admission-bounded).
    depth: usize,
    /// Items awaiting a retry attempt, with their due time. Not counted
    /// against `depth` — they were admitted once and re-enter their lane
    /// without a second admission check — but still held against their
    /// client's quota.
    delayed: Vec<(Instant, PendingItem<T>)>,
    /// Unresolved items per client (queued + running + awaiting retry);
    /// the quota denominator.
    outstanding: HashMap<u64, usize>,
    shutdown: bool,
}

struct StatCells {
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    groups: AtomicU64,
    group_items: AtomicU64,
    mixed_groups: AtomicU64,
    max_queue_depth: AtomicUsize,
}

struct Shared<T: Scalar<Real = f64>> {
    ctx: QrContext,
    cfg: ServiceConfig,
    inner: Mutex<ServiceInner<T>>,
    /// Wakes the dispatcher: new work, a due retry, or shutdown.
    work_cv: Condvar,
    /// Wakes blocked [`QrClient::submit_within`] callers: freed queue
    /// space or quota, or shutdown. Notified only when someone is waiting
    /// (the waiter counter lives inside the [`LazyCondvar`]).
    space_cv: LazyCondvar,
    next_client: AtomicU64,
    next_seq: AtomicU64,
    /// Backoff jitter source (deterministic seed: backoff spread needs no
    /// entropy, and reproducible delays keep the chaos suite replayable).
    rng: Mutex<Rng>,
    stats: StatCells,
}

/// Why an admission attempt did not accept the submission.
enum AdmitErr {
    /// Queue at capacity (or the blocking path timed out there).
    Full,
    /// Priority-shed: `Low` work while the queue is at or past the shed
    /// threshold.
    Shed,
    /// The client's unresolved-item quota is exhausted.
    Quota,
    /// The service is shutting down.
    Shutdown,
}

impl<T: Scalar<Real = f64>> Shared<T> {
    /// Admission check under the inner lock; does not enqueue.
    fn check_admission(
        &self,
        inner: &ServiceInner<T>,
        client: u64,
        priority: Priority,
    ) -> Result<(), AdmitErr> {
        if inner.shutdown {
            return Err(AdmitErr::Shutdown);
        }
        if inner.depth >= self.cfg.queue_capacity {
            return Err(AdmitErr::Full);
        }
        if priority == Priority::Low && inner.depth >= self.cfg.shed_threshold {
            return Err(AdmitErr::Shed);
        }
        if inner.outstanding.get(&client).copied().unwrap_or(0) >= self.cfg.per_client_quota {
            return Err(AdmitErr::Quota);
        }
        Ok(())
    }

    /// Enqueues an admitted submission and returns its ticket. Caller must
    /// have passed [`Shared::check_admission`] under the same lock guard.
    fn enqueue(
        &self,
        inner: &mut ServiceInner<T>,
        client: u64,
        a: Matrix<T>,
        plan: Arc<QrPlan<T>>,
    ) -> Ticket<T> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(OnceSlot::new());
        let item = PendingItem {
            seq,
            client,
            attempt: 0,
            prev_delay: self.cfg.retry.base_delay,
            a: Arc::new(a),
            plan,
            slot: Arc::clone(&slot),
        };
        let lane = match inner.lanes.iter_mut().find(|l| l.client == client) {
            Some(lane) => lane,
            None => {
                inner.lanes.push(ClientLane {
                    client,
                    deficit: 0,
                    items: VecDeque::new(),
                });
                inner.lanes.last_mut().expect("just pushed")
            }
        };
        lane.items.push_back(item);
        inner.depth += 1;
        *inner.outstanding.entry(client).or_insert(0) += 1;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.stats
            .max_queue_depth
            .fetch_max(inner.depth, Ordering::Relaxed);
        Ticket { seq, slot }
    }

    /// Maps an admission failure to its client-facing error and counts it.
    fn reject(&self, err: AdmitErr) -> QrError {
        match err {
            AdmitErr::Shutdown => QrError::ServiceShutdown,
            AdmitErr::Shed => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                QrError::QueueFull
            }
            AdmitErr::Full | AdmitErr::Quota => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                QrError::QueueFull
            }
        }
    }

    /// Delivers an item's final outcome: resolves the ticket, releases the
    /// quota slot and wakes blocked submitters.
    fn resolve(&self, item: PendingItem<T>, outcome: Result<QrFactorization<T>, QrError>) {
        match &outcome {
            Ok(_) => self.stats.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        {
            let mut inner = self.inner.lock();
            if let Some(count) = inner.outstanding.get_mut(&item.client) {
                *count -= 1;
                if *count == 0 {
                    inner.outstanding.remove(&item.client);
                }
            }
        }
        item.slot.set(outcome);
        self.space_cv.notify_all_if_waiting();
    }

    /// Outcome routing of a finished attempt: transient failures with
    /// retries left re-enter the delayed list with decorrelated backoff;
    /// everything else resolves the ticket. During shutdown nothing is
    /// retried — the item surfaces its original fault.
    fn finish_attempt(
        &self,
        mut item: PendingItem<T>,
        outcome: Result<QrFactorization<T>, QrError>,
    ) {
        if let Err(e) = &outcome {
            if e.is_transient() && item.attempt < self.cfg.retry.max_retries {
                let mut inner = self.inner.lock();
                if !inner.shutdown {
                    let delay = self.next_delay(item.prev_delay);
                    item.prev_delay = delay;
                    item.attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    inner.delayed.push((Instant::now() + delay, item));
                    drop(inner);
                    self.work_cv.notify_one();
                    return;
                }
            }
        }
        self.resolve(item, outcome);
    }

    /// One decorrelated-jitter draw:
    /// `min(max_delay, rand(base_delay, 3 × prev))`.
    fn next_delay(&self, prev: Duration) -> Duration {
        let lo = self.cfg.retry.base_delay.as_nanos() as u64;
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let draw = lo + self.rng.lock().next_u64() % (hi - lo);
        Duration::from_nanos(draw).min(self.cfg.retry.max_delay)
    }

    fn stats_snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            groups: self.stats.groups.load(Ordering::Relaxed),
            group_items: self.stats.group_items.load(Ordering::Relaxed),
            mixed_groups: self.stats.mixed_groups.load(Ordering::Relaxed),
            max_queue_depth: self.stats.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// The per-group adapter between [`QrContext::factorize_stream`]'s
/// worker-thread completion hook and the service's retry/resolve routing.
struct GroupSink<T: Scalar<Real = f64>> {
    shared: Arc<Shared<T>>,
    items: Vec<Mutex<Option<PendingItem<T>>>>,
}

impl<T: Scalar<Real = f64>> ItemSink<T> for GroupSink<T> {
    fn item_done(&self, index: usize, outcome: Result<QrFactorization<T>, QrError>) {
        let item = self.items[index]
            .lock()
            .take()
            .expect("the stream delivers each item exactly once");
        self.shared.finish_attempt(item, outcome);
    }
}

/// A streaming, multi-tenant factorization service (see the
/// [module docs](self)). Owns a [`QrContext`] and a dispatcher thread;
/// hand out per-tenant [`QrClient`]s with [`QrService::client`].
pub struct QrService<T: Scalar<Real = f64>> {
    shared: Arc<Shared<T>>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<T: Scalar<Real = f64>> std::fmt::Debug for QrService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrService")
            .field("config", &self.shared.cfg)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar<Real = f64>> QrService<T> {
    /// Starts the service: takes ownership of `ctx` (its pool executes
    /// every submission) and spawns the dispatcher thread. Fails with
    /// [`QrError::ThreadSpawn`] if the dispatcher thread cannot start.
    pub fn new(ctx: QrContext, config: ServiceConfig) -> Result<Self, QrError> {
        let shared = Arc::new(Shared {
            ctx,
            cfg: config.clamped(),
            inner: Mutex::new(ServiceInner {
                lanes: Vec::new(),
                rr_cursor: 0,
                depth: 0,
                delayed: Vec::new(),
                outstanding: HashMap::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            space_cv: LazyCondvar::new(),
            next_client: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            rng: Mutex::new(Rng::seed_from_u64(0x9E37_79B9_7F4A_7C15)),
            stats: StatCells {
                submitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                groups: AtomicU64::new(0),
                group_items: AtomicU64::new(0),
                mixed_groups: AtomicU64::new(0),
                max_queue_depth: AtomicUsize::new(0),
            },
        });
        let for_thread = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("tileqr-service".into())
            .spawn(move || dispatch_loop(for_thread))
            .map_err(|e| QrError::ThreadSpawn {
                details: e.to_string(),
            })?;
        Ok(QrService {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// A new client handle — an independent tenant with its own fair-share
    /// lane and quota. Clone the handle to share one tenant identity
    /// across threads.
    pub fn client(&self) -> QrClient<T> {
        QrClient {
            shared: Arc::clone(&self.shared),
            id: self.shared.next_client.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Snapshot of the service's lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats_snapshot()
    }

    /// Currently queued (admitted, not yet dispatched) submissions.
    pub fn queue_depth(&self) -> usize {
        self.shared.inner.lock().depth
    }

    /// Shuts the service down (see the [module docs](self#shutdown-ordering)):
    /// in-flight items drain with their real outcomes, queued and
    /// awaiting-retry items resolve with [`QrError::ServiceShutdown`], and
    /// the dispatcher thread is joined before this returns. Idempotent;
    /// dropping the service does the same. The handle stays usable
    /// afterwards for post-shutdown inspection ([`QrService::stats`],
    /// [`QrService::queue_depth`]).
    pub fn shutdown(&self) {
        self.shared.inner.lock().shutdown = true;
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all_if_waiting();
        if let Some(handle) = self.dispatcher.lock().take() {
            // A panicked dispatcher already ran its drain guard; the
            // service is still safe to drop.
            let _ = handle.join();
        }
    }
}

impl<T: Scalar<Real = f64>> Drop for QrService<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A tenant handle of a [`QrService`]. Cheap to clone (clones share the
/// tenant's lane and quota); safe to use from many threads at once.
pub struct QrClient<T: Scalar<Real = f64>> {
    shared: Arc<Shared<T>>,
    id: u64,
}

impl<T: Scalar<Real = f64>> Clone for QrClient<T> {
    fn clone(&self) -> Self {
        QrClient {
            shared: Arc::clone(&self.shared),
            id: self.id,
        }
    }
}

impl<T: Scalar<Real = f64>> std::fmt::Debug for QrClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrClient").field("id", &self.id).finish()
    }
}

impl<T: Scalar<Real = f64>> QrClient<T> {
    /// Fast-fail submission at [`Priority::Normal`]; see
    /// [`QrClient::submit_with_priority`].
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, plan: &Arc<QrPlan<T>>, a: Matrix<T>) -> Result<Ticket<T>, QrError> {
        self.submit_with_priority(plan, a, Priority::Normal)
    }

    /// Fast-fail submission: returns a [`Ticket`] immediately, or a typed
    /// rejection without blocking — [`QrError::ShapeMismatch`] if `a` does
    /// not match the plan, [`QrError::QueueFull`] on a full queue, shed
    /// priority class or exhausted quota (retriable: back off and
    /// resubmit), [`QrError::ServiceShutdown`] after shutdown.
    #[allow(clippy::result_large_err)]
    pub fn submit_with_priority(
        &self,
        plan: &Arc<QrPlan<T>>,
        a: Matrix<T>,
        priority: Priority,
    ) -> Result<Ticket<T>, QrError> {
        check_shape(plan, &a)?;
        let ticket = {
            let mut inner = self.shared.inner.lock();
            match self.shared.check_admission(&inner, self.id, priority) {
                Ok(()) => self
                    .shared
                    .enqueue(&mut inner, self.id, a, Arc::clone(plan)),
                Err(e) => return Err(self.shared.reject(e)),
            }
        };
        self.shared.work_cv.notify_one();
        Ok(ticket)
    }

    /// Blocking submission with a deadline: waits up to `timeout` for
    /// admission (queue space, shed pressure below threshold, quota),
    /// returning [`QrError::QueueFull`] if admission never opened in time
    /// and [`QrError::ServiceShutdown`] if the service closed while
    /// waiting. Shape mismatches still fail immediately.
    #[allow(clippy::result_large_err)]
    pub fn submit_within(
        &self,
        plan: &Arc<QrPlan<T>>,
        a: Matrix<T>,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Ticket<T>, QrError> {
        check_shape(plan, &a)?;
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        let ticket = loop {
            match self.shared.check_admission(&inner, self.id, priority) {
                Ok(()) => {
                    break self
                        .shared
                        .enqueue(&mut inner, self.id, a, Arc::clone(plan))
                }
                Err(AdmitErr::Shutdown) => return Err(QrError::ServiceShutdown),
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(self.shared.reject(e));
                    }
                    let (guard, _timed_out) =
                        self.shared.space_cv.wait_timeout(inner, deadline - now);
                    inner = guard;
                }
            }
        };
        drop(inner);
        self.shared.work_cv.notify_one();
        Ok(ticket)
    }

    /// Snapshot of the service's lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats_snapshot()
    }
}

/// O(1) metadata check shared by every submission path.
fn check_shape<T: Scalar<Real = f64>>(plan: &QrPlan<T>, a: &Matrix<T>) -> Result<(), QrError> {
    if a.shape() != (plan.m(), plan.n()) {
        return Err(QrError::ShapeMismatch {
            expected: (plan.m(), plan.n()),
            got: a.shape(),
        });
    }
    Ok(())
}

/// Resolves every still-queued and awaiting-retry item with
/// [`QrError::ServiceShutdown`] when the dispatcher exits — normally *or*
/// by panic — so no ticket is ever leaked.
struct DrainGuard<T: Scalar<Real = f64>> {
    shared: Arc<Shared<T>>,
}

impl<T: Scalar<Real = f64>> Drop for DrainGuard<T> {
    fn drop(&mut self) {
        let orphans: Vec<PendingItem<T>> = {
            let mut inner = self.shared.inner.lock();
            // Close admission even on the panic path, so nothing re-enters
            // the queue after the sweep.
            inner.shutdown = true;
            let mut orphans = Vec::with_capacity(inner.depth + inner.delayed.len());
            for lane in &mut inner.lanes {
                orphans.extend(lane.items.drain(..));
            }
            inner.depth = 0;
            orphans.extend(inner.delayed.drain(..).map(|(_, item)| item));
            orphans
        };
        for item in orphans {
            self.shared.resolve(item, Err(QrError::ServiceShutdown));
        }
        self.shared.space_cv.notify_all_if_waiting();
    }
}

/// What one trip through the dispatcher's wait loop decided.
enum Round<T: Scalar<Real = f64>> {
    Run(Vec<PendingItem<T>>),
    Exit,
}

/// The dispatcher thread: waits for work, collects a fair same-plan group,
/// and runs it as one fused streaming job. Single-threaded by design — it
/// is the only pool submitter, so fused jobs never contend, and all
/// fairness state lives under one lock.
fn dispatch_loop<T: Scalar<Real = f64>>(shared: Arc<Shared<T>>) {
    let _drain = DrainGuard {
        shared: Arc::clone(&shared),
    };
    loop {
        let round = {
            let mut inner = shared.inner.lock();
            // Deadline of the current coalescing window, armed when work
            // first appears in this round and a linger is configured.
            let mut linger_until: Option<Instant> = None;
            loop {
                let now = Instant::now();
                promote_due_retries(&mut inner, now);
                // Shutdown wins over queued work: the backlog is *drained*
                // (every queued and delayed item resolves with
                // `ServiceShutdown` via the guard), not run to completion —
                // only the group already in flight finishes with real
                // outcomes.
                if inner.shutdown {
                    break Round::Exit;
                }
                if inner.depth > 0 {
                    // Linger: with a partial group and time left in the
                    // window, wait for more arrivals instead of launching a
                    // narrow fused job.
                    if !shared.cfg.linger.is_zero() && inner.depth < shared.cfg.max_group {
                        let until = *linger_until.get_or_insert(now + shared.cfg.linger);
                        if now < until {
                            let (guard, _timed_out) =
                                shared.work_cv.wait_timeout(inner, until - now);
                            inner = guard;
                            continue;
                        }
                    }
                    break Round::Run(collect_group(&mut inner, shared.cfg.max_group));
                }
                linger_until = None;
                let next_due = inner.delayed.iter().map(|&(due, _)| due).min();
                inner = match next_due {
                    Some(due) => {
                        let (guard, _timed_out) = shared
                            .work_cv
                            .wait_timeout(inner, due.saturating_duration_since(now));
                        guard
                    }
                    None => shared.work_cv.wait(inner),
                };
            }
        };
        match round {
            Round::Exit => break,
            Round::Run(group) => {
                // The dequeue freed queue space; let blocked submitters at
                // it before the (potentially long) fused job runs.
                shared.space_cv.notify_all_if_waiting();
                run_group(&shared, group);
            }
        }
    }
}

/// Moves retry items whose backoff expired back to the *front* of their
/// client's lane (a retry has already waited; new submissions queue behind
/// it). Bypasses admission — the item was admitted once and never left its
/// quota slot.
fn promote_due_retries<T: Scalar<Real = f64>>(inner: &mut ServiceInner<T>, now: Instant) {
    let mut i = 0;
    while i < inner.delayed.len() {
        if inner.delayed[i].0 <= now {
            let (_, item) = inner.delayed.swap_remove(i);
            let client = item.client;
            let lane = match inner.lanes.iter_mut().find(|l| l.client == client) {
                Some(lane) => lane,
                None => {
                    inner.lanes.push(ClientLane {
                        client,
                        deficit: 0,
                        items: VecDeque::new(),
                    });
                    inner.lanes.last_mut().expect("just pushed")
                }
            };
            lane.items.push_front(item);
            inner.depth += 1;
        } else {
            i += 1;
        }
    }
}

/// Deficit-round-robin dequeue of up to `max_group` items — across
/// plans: the fused job maps global ids through per-item DAG offsets, so
/// lanes with different shapes coalesce into one wide job instead of
/// fragmenting into narrow per-plan rounds. Each visited non-empty lane
/// accrues one quantum equal to **its own** head-of-line task count (so
/// every lane can always afford its next item, and no lane's budget is
/// inflated by another tenant's large plan) and spends it on its items'
/// DAG sizes; unspent deficit carries, capped at two quanta. The scan
/// stops after a full fruitless rotation.
fn collect_group<T: Scalar<Real = f64>>(
    inner: &mut ServiceInner<T>,
    max_group: usize,
) -> Vec<PendingItem<T>> {
    let mut group: Vec<PendingItem<T>> = Vec::new();
    let mut fruitless = 0;
    while group.len() < max_group && inner.depth > 0 && fruitless < inner.lanes.len() {
        let lane_count = inner.lanes.len();
        let lane = &mut inner.lanes[inner.rr_cursor % lane_count];
        inner.rr_cursor = inner.rr_cursor.wrapping_add(1);
        let Some(head) = lane.items.front() else {
            // Standard DRR: an idle lane keeps no balance.
            lane.deficit = 0;
            fruitless += 1;
            continue;
        };
        let quantum = head.plan.task_count().max(1);
        lane.deficit = (lane.deficit + quantum).min(2 * quantum);
        let mut took = false;
        while group.len() < max_group {
            let Some(head) = lane.items.front() else {
                break;
            };
            let cost = head.plan.task_count();
            if lane.deficit < cost {
                break;
            }
            let item = lane.items.pop_front().expect("head exists");
            lane.deficit -= cost;
            inner.depth -= 1;
            group.push(item);
            took = true;
        }
        fruitless = if took { 0 } else { fruitless + 1 };
    }
    inner.lanes.retain(|lane| !lane.items.is_empty());
    group
}

/// Runs one (possibly mixed-plan) group as a fused streaming job.
/// Deterministic input errors (the opt-in non-finite scan, O(m·n) but
/// scan-only) resolve immediately without touching the pool; the rest
/// enter the job as **dense** inputs — the first worker to touch each copy
/// performs the tiling, so the dispatcher returns to admission in O(group)
/// instead of blocking for the whole group's tiling time — and stream
/// their outcomes through the [`GroupSink`].
fn run_group<T: Scalar<Real = f64>>(shared: &Arc<Shared<T>>, group: Vec<PendingItem<T>>) {
    let mut runnable: Vec<PendingItem<T>> = Vec::with_capacity(group.len());
    for item in group {
        match item.plan.non_finite_in(&item.a) {
            Some((row, col)) => {
                shared.resolve(item, Err(QrError::NonFiniteInput { row, col }));
            }
            None => runnable.push(item),
        }
    }
    let Some(first) = runnable.first() else {
        return;
    };
    shared.stats.groups.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .group_items
        .fetch_add(runnable.len() as u64, Ordering::Relaxed);
    if runnable
        .iter()
        .any(|item| !Arc::ptr_eq(&item.plan, &first.plan))
    {
        shared.stats.mixed_groups.fetch_add(1, Ordering::Relaxed);
    }
    let entries: Vec<StreamEntry<T>> = runnable
        .iter()
        .map(|item| StreamEntry {
            plan: Arc::clone(&item.plan),
            input: StreamInput::Dense(Arc::clone(&item.a)),
            probe: probe_id(item.seq, item.attempt),
        })
        .collect();
    let sink: Arc<dyn ItemSink<T>> = Arc::new(GroupSink {
        shared: Arc::clone(shared),
        items: runnable.into_iter().map(|i| Mutex::new(Some(i))).collect(),
    });
    shared.ctx.factorize_stream(entries, &sink);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamping_keeps_bounds_sane() {
        let cfg = ServiceConfig::default()
            .with_queue_capacity(0)
            .with_shed_threshold(10)
            .with_client_quota(0)
            .with_max_group(0)
            .clamped();
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.shed_threshold, 1);
        assert_eq!(cfg.per_client_quota, 1);
        assert_eq!(cfg.max_group, 1);
    }

    #[test]
    fn linger_coalesces_without_stalling_or_blocking_shutdown() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(2).unwrap();
        let plan = Arc::new(QrPlan::<f64>::new(24, 16, crate::driver::QrConfig::new(8)).unwrap());
        let service = QrService::new(
            ctx,
            ServiceConfig::default().with_linger(Duration::from_millis(5)),
        )
        .unwrap();
        let client = service.client();
        // Items trickling in under the linger window still all complete —
        // the window delays dispatch, it never swallows work.
        let tickets: Vec<_> = (0..3)
            .map(|s| client.submit(&plan, random_matrix(24, 16, s)).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        // Shutdown during an armed linger window exits promptly and drains.
        let _pending = client.submit(&plan, random_matrix(24, 16, 9)).unwrap();
        service.shutdown();
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn probe_ids_separate_attempts() {
        assert_eq!(probe_id(7, 0), 7);
        assert_eq!(probe_id(7, 1), 7 + RETRY_PROBE_STRIDE as usize);
        assert_ne!(probe_id(7, 1), probe_id(8, 0));
    }

    #[test]
    fn basic_submit_resolves_with_a_correct_factorization() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(2).unwrap();
        let plan = Arc::new(QrPlan::<f64>::new(24, 16, crate::driver::QrConfig::new(8)).unwrap());
        let service = QrService::new(ctx, ServiceConfig::default()).unwrap();
        let client = service.client();
        let a = random_matrix(24, 16, 7);
        let reference = {
            let ctx = QrContext::new(1).unwrap();
            ctx.factorize(&plan, &a).unwrap()
        };
        let ticket = client.submit(&plan, a).unwrap();
        let f = ticket.wait().unwrap();
        assert_eq!(f.r().as_slice(), reference.r().as_slice());
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn shape_mismatch_is_rejected_at_submit() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(1).unwrap();
        let plan = Arc::new(QrPlan::<f64>::new(24, 16, crate::driver::QrConfig::new(8)).unwrap());
        let service = QrService::new(ctx, ServiceConfig::default()).unwrap();
        let client = service.client();
        let wrong = random_matrix(16, 16, 1);
        match client.submit(&plan, wrong) {
            Err(QrError::ShapeMismatch { expected, got }) => {
                assert_eq!(expected, (24, 16));
                assert_eq!(got, (16, 16));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert_eq!(service.stats().submitted, 0);
    }

    #[test]
    fn shutdown_drains_queued_items_with_service_shutdown() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(1).unwrap();
        let plan = Arc::new(QrPlan::<f64>::new(24, 16, crate::driver::QrConfig::new(8)).unwrap());
        let service = QrService::new(ctx, ServiceConfig::default()).unwrap();
        let client = service.client();
        let tickets: Vec<_> = (0..8)
            .map(|s| client.submit(&plan, random_matrix(24, 16, s)).unwrap())
            .collect();
        service.shutdown();
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) | Err(QrError::ServiceShutdown) => {}
                Err(e) => panic!("expected Ok or ServiceShutdown, got {e:?}"),
            }
        }
    }
}
