//! Dependency-counting DAG executors.
//!
//! The task graph built by `tileqr-core` is already in topological order with
//! explicit predecessor lists. Two execution strategies are provided:
//!
//! * [`execute_sequential`] simply walks the tasks in order — used by the
//!   sequential driver and as the reference for correctness tests;
//! * [`execute_parallel`] runs a pool of worker threads that pull ready tasks
//!   from a lock-free queue and release their successors as they finish —
//!   a miniature version of the PLASMA/QUARK dynamic scheduler used in the
//!   paper's experiments.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;
use tileqr_core::dag::TaskDag;
use tileqr_core::TaskKind;

/// Executes every task of the DAG in topological order on the current
/// thread.
pub fn execute_sequential<F>(dag: &TaskDag, mut run: F)
where
    F: FnMut(TaskKind),
{
    for task in &dag.tasks {
        run(task.kind);
    }
}

/// Executes the DAG on `num_threads` worker threads.
///
/// Every worker repeatedly pops a ready task from a shared lock-free queue,
/// runs it, and decrements the dependency counters of its successors, pushing
/// any task whose counter reaches zero. The closure must therefore be safe to
/// call concurrently for tasks that are not ordered by the DAG — the state
/// module guarantees this by protecting each tile with its own lock.
pub fn execute_parallel<F>(dag: &TaskDag, num_threads: usize, run: F)
where
    F: Fn(TaskKind) + Sync,
{
    let n = dag.tasks.len();
    if n == 0 {
        return;
    }
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        for task in &dag.tasks {
            run(task.kind);
        }
        return;
    }

    let succ = dag.successors();
    let remaining: Vec<AtomicUsize> =
        dag.tasks.iter().map(|t| AtomicUsize::new(t.deps.len())).collect();
    let ready: SegQueue<usize> = SegQueue::new();
    for (idx, task) in dag.tasks.iter().enumerate() {
        if task.deps.is_empty() {
            ready.push(idx);
        }
    }
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| loop {
                match ready.pop() {
                    Some(idx) => {
                        run(dag.tasks[idx].kind);
                        completed.fetch_add(1, Ordering::Release);
                        for &s in &succ[idx] {
                            if remaining[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                ready.push(s);
                            }
                        }
                    }
                    None => {
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use tileqr_core::algorithms::Algorithm;
    use tileqr_core::KernelFamily;

    fn sample_dag(p: usize, q: usize) -> TaskDag {
        TaskDag::build(&Algorithm::Greedy.elimination_list(p, q), KernelFamily::TT)
    }

    #[test]
    fn sequential_visits_every_task_once() {
        let dag = sample_dag(6, 3);
        let mut seen = Vec::new();
        execute_sequential(&dag, |k| seen.push(k));
        assert_eq!(seen.len(), dag.len());
        let unique: HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), dag.len());
    }

    #[test]
    fn parallel_visits_every_task_once() {
        let dag = sample_dag(8, 4);
        let seen = Mutex::new(HashSet::new());
        execute_parallel(&dag, 4, |k| {
            assert!(seen.lock().insert(k), "task executed twice: {k:?}");
        });
        assert_eq!(seen.lock().len(), dag.len());
    }

    #[test]
    fn parallel_respects_dependencies() {
        // Record completion order and verify that every dependency finished
        // before its dependent started. We log positions under a lock.
        let dag = sample_dag(7, 3);
        let order = Mutex::new(Vec::new());
        execute_parallel(&dag, 3, |k| {
            order.lock().push(k);
        });
        let order = order.into_inner();
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, k)| (*k, i)).collect();
        for task in &dag.tasks {
            let me = position[&task.kind];
            for &d in &task.deps {
                let dep = position[&dag.tasks[d].kind];
                assert!(dep < me, "dependency ran after dependent: {:?} -> {:?}", dag.tasks[d].kind, task.kind);
            }
        }
    }

    #[test]
    fn empty_dag_is_a_noop() {
        let dag = TaskDag::build(&Algorithm::FlatTree.elimination_list(1, 1), KernelFamily::TT);
        // a 1x1 grid has a single GEQRT; build a truly empty DAG by filtering
        let empty = TaskDag { p: 0, q: 0, family: KernelFamily::TT, tasks: Vec::new() };
        let mut count = 0;
        execute_sequential(&empty, |_| count += 1);
        execute_parallel(&empty, 4, |_| panic!("should not run"));
        assert_eq!(count, 0);
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn single_thread_parallel_falls_back_to_sequential_order() {
        let dag = sample_dag(5, 2);
        let seen = Mutex::new(Vec::new());
        execute_parallel(&dag, 1, |k| seen.lock().push(k));
        let seen = seen.into_inner();
        let sequential: Vec<_> = dag.tasks.iter().map(|t| t.kind).collect();
        assert_eq!(seen, sequential);
    }
}
