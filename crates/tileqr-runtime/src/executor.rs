//! Dependency-counting DAG executors.
//!
//! The task graph built by `tileqr-core` is already in topological order with
//! explicit predecessor lists. Two execution strategies are provided:
//!
//! * [`execute_sequential`] / [`execute_sequential_with`] simply walk the
//!   tasks in order — used by the sequential driver and as the reference for
//!   correctness tests;
//! * [`execute_parallel`] / [`execute_parallel_with`] run a pool of worker
//!   threads that pull ready tasks from a shared queue and release their
//!   successors as they finish — a miniature version of the PLASMA/QUARK
//!   dynamic scheduler used in the paper's experiments.
//!
//! The `_with` variants thread a per-worker **workspace** through the task
//! closure: `make_ws` is called once per worker thread (and once for the
//! sequential path), and every task executed by that worker receives a
//! mutable reference to its worker's workspace. With
//! [`tileqr_kernels::Workspace`] as the workspace type this makes the hot
//! loop allocation-free: all kernel scratch is preallocated before the first
//! task runs. Idle workers back off with
//! [`Backoff`](crate::sync::Backoff) (spin, then yield) instead of hammering
//! `yield_now`, so they stop burning a core at the tail of the DAG.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use tileqr_core::dag::TaskDag;
use tileqr_core::TaskKind;

use crate::sync::{Backoff, TaskQueue};

/// Executes every task of the DAG in topological order on the current
/// thread.
pub fn execute_sequential<F>(dag: &TaskDag, mut run: F)
where
    F: FnMut(TaskKind),
{
    for task in &dag.tasks {
        run(task.kind);
    }
}

/// Executes every task in topological order, threading a caller-provided
/// workspace through the task closure.
pub fn execute_sequential_with<W, F>(dag: &TaskDag, ws: &mut W, mut run: F)
where
    F: FnMut(TaskKind, &mut W),
{
    for task in &dag.tasks {
        run(task.kind, ws);
    }
}

/// Executes the DAG on `num_threads` worker threads (workspace-free
/// compatibility wrapper over [`execute_parallel_with`]).
pub fn execute_parallel<F>(dag: &TaskDag, num_threads: usize, run: F)
where
    F: Fn(TaskKind) + Sync,
{
    execute_parallel_with(dag, num_threads, || (), |task, _ws: &mut ()| run(task));
}

/// Executes the DAG on `num_threads` worker threads with one workspace per
/// worker.
///
/// Every worker builds its own workspace with `make_ws` when it starts, then
/// repeatedly pops a ready task from a shared queue, runs it against its
/// workspace, and decrements the dependency counters of the task's
/// successors, pushing any task whose counter reaches zero. The closure must
/// be safe to call concurrently for tasks that are not ordered by the DAG —
/// the state module guarantees this by protecting each tile with its own
/// lock.
///
/// After the setup phase (queue and counters sized to the DAG, workspaces
/// built per worker) the loop performs no heap allocations.
pub fn execute_parallel_with<W, M, F>(dag: &TaskDag, num_threads: usize, make_ws: M, run: F)
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(TaskKind, &mut W) + Sync,
{
    let n = dag.tasks.len();
    if n == 0 {
        return;
    }
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        let mut ws = make_ws();
        for task in &dag.tasks {
            run(task.kind, &mut ws);
        }
        return;
    }

    let succ = dag.successors_csr();
    let remaining: Vec<AtomicUsize> = dag
        .tasks
        .iter()
        .map(|t| AtomicUsize::new(t.deps.len()))
        .collect();
    let ready = TaskQueue::with_capacity(n);
    for (idx, task) in dag.tasks.iter().enumerate() {
        if task.deps.is_empty() {
            ready.push(idx);
        }
    }
    let completed = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);

    // Arms while a task runs; if the task panics the unwind runs this Drop,
    // flagging every other worker to exit so `thread::scope` can join them
    // and propagate the panic instead of deadlocking on `completed < n`.
    struct AbortOnPanic<'a>(&'a AtomicBool);
    impl Drop for AbortOnPanic<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| {
                let mut ws = make_ws();
                let mut backoff = Backoff::new();
                loop {
                    if aborted.load(Ordering::Acquire) {
                        break;
                    }
                    match ready.pop() {
                        Some(idx) => {
                            backoff.reset();
                            let guard = AbortOnPanic(&aborted);
                            run(dag.tasks[idx].kind, &mut ws);
                            std::mem::forget(guard);
                            completed.fetch_add(1, Ordering::Release);
                            for &s in succ.of(idx) {
                                if remaining[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    ready.push(s);
                                }
                            }
                        }
                        None => {
                            if completed.load(Ordering::Acquire) >= n {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use tileqr_core::algorithms::Algorithm;
    use tileqr_core::KernelFamily;

    fn sample_dag(p: usize, q: usize) -> TaskDag {
        TaskDag::build(&Algorithm::Greedy.elimination_list(p, q), KernelFamily::TT)
    }

    #[test]
    fn sequential_visits_every_task_once() {
        let dag = sample_dag(6, 3);
        let mut seen = Vec::new();
        execute_sequential(&dag, |k| seen.push(k));
        assert_eq!(seen.len(), dag.len());
        let unique: HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), dag.len());
    }

    #[test]
    fn parallel_visits_every_task_once() {
        let dag = sample_dag(8, 4);
        let seen = Mutex::new(HashSet::new());
        execute_parallel(&dag, 4, |k| {
            assert!(seen.lock().insert(k), "task executed twice: {k:?}");
        });
        assert_eq!(seen.lock().len(), dag.len());
    }

    #[test]
    fn parallel_respects_dependencies() {
        // Record completion order and verify that every dependency finished
        // before its dependent started. We log positions under a lock.
        let dag = sample_dag(7, 3);
        let order = Mutex::new(Vec::new());
        execute_parallel(&dag, 3, |k| {
            order.lock().push(k);
        });
        let order = order.into_inner();
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, k)| (*k, i)).collect();
        for task in &dag.tasks {
            let me = position[&task.kind];
            for &d in &task.deps {
                let dep = position[&dag.tasks[d].kind];
                assert!(
                    dep < me,
                    "dependency ran after dependent: {:?} -> {:?}",
                    dag.tasks[d].kind,
                    task.kind
                );
            }
        }
    }

    #[test]
    fn empty_dag_is_a_noop() {
        let dag = TaskDag::build(
            &Algorithm::FlatTree.elimination_list(1, 1),
            KernelFamily::TT,
        );
        // a 1x1 grid has a single GEQRT; build a truly empty DAG by filtering
        let empty = TaskDag {
            p: 0,
            q: 0,
            family: KernelFamily::TT,
            tasks: Vec::new(),
        };
        let mut count = 0;
        execute_sequential(&empty, |_| count += 1);
        execute_parallel(&empty, 4, |_| panic!("should not run"));
        assert_eq!(count, 0);
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn single_thread_parallel_falls_back_to_sequential_order() {
        let dag = sample_dag(5, 2);
        let seen = Mutex::new(Vec::new());
        execute_parallel(&dag, 1, |k| seen.lock().push(k));
        let seen = seen.into_inner();
        let sequential: Vec<_> = dag.tasks.iter().map(|t| t.kind).collect();
        assert_eq!(seen, sequential);
    }

    #[test]
    fn each_worker_gets_its_own_workspace() {
        // Workspaces are identified by a creation counter; every task records
        // which workspace it ran with, and the number of distinct workspaces
        // must not exceed the worker count.
        let dag = sample_dag(8, 4);
        let counter = AtomicUsize::new(0);
        let used = Mutex::new(HashSet::new());
        let tasks = Mutex::new(0usize);
        execute_parallel_with(
            &dag,
            4,
            || counter.fetch_add(1, Ordering::SeqCst),
            |_task, ws_id| {
                used.lock().insert(*ws_id);
                *tasks.lock() += 1;
            },
        );
        assert_eq!(*tasks.lock(), dag.len());
        let created = counter.load(Ordering::SeqCst);
        assert_eq!(created, 4, "one workspace per worker");
        assert!(!used.lock().is_empty() && used.lock().len() <= 4);
    }

    #[test]
    fn task_panic_propagates_instead_of_hanging() {
        // A panicking task must flag the other workers to exit so the thread
        // scope can join and re-raise the panic (previously the pool spun
        // forever on `completed < n`).
        let dag = sample_dag(8, 4);
        let poison = dag.tasks[dag.len() / 2].kind;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_parallel(&dag, 4, |k| {
                if k == poison {
                    panic!("injected task failure");
                }
            });
        }));
        assert!(result.is_err(), "panic was swallowed");
    }

    #[test]
    fn sequential_with_reuses_one_workspace() {
        let dag = sample_dag(5, 2);
        let mut ws = 0usize;
        let mut count = 0usize;
        execute_sequential_with(&dag, &mut ws, |_k, ws| {
            *ws += 1;
            count += 1;
        });
        assert_eq!(ws, dag.len());
        assert_eq!(count, dag.len());
    }
}
