//! Dependency-counting DAG executors and the pluggable ready-task scheduler.
//!
//! The task graph built by `tileqr-core` is already in topological order with
//! explicit predecessor lists. Two execution strategies are provided:
//!
//! * [`execute_sequential`] / [`execute_sequential_with`] simply walk the
//!   tasks in order — used by the sequential driver and as the reference for
//!   correctness tests;
//! * [`execute_parallel`] / [`execute_parallel_with`] /
//!   [`execute_parallel_with_scheduler`] run a pool of worker threads that
//!   pull ready tasks from a [`Scheduler`] and release their successors as
//!   they finish — a miniature version of the PLASMA/QUARK dynamic scheduler
//!   used in the paper's experiments.
//!
//! # Schedulers
//!
//! *Which* ready task a worker runs next is delegated to the [`Scheduler`]
//! trait; [`SchedulerKind`] selects between the three implementations:
//!
//! * [`SchedulerKind::LockedFifo`] — the original single
//!   [`TaskQueue`](crate::sync::TaskQueue) (a mutex-protected FIFO) shared by
//!   every worker. Kept for ablation: it is correct and simple, but on many
//!   cores the single lock serializes every push and pop.
//! * [`SchedulerKind::WorkStealing`] — one Chase–Lev
//!   [`WorkerDeque`](crate::sync::WorkerDeque) per worker plus a global FIFO
//!   injector holding the initially-ready tasks. A worker pushes the tasks it
//!   enables onto its *own* deque and pops them back LIFO (cache-warm tiles);
//!   an idle worker first drains the injector, then steals the *oldest* task
//!   from a sibling. No lock is ever taken on the hot path.
//! * [`SchedulerKind::WorkStealingPriority`] — same deques, but each batch of
//!   newly-enabled tasks is pushed in increasing **critical-path priority**
//!   order ([`TaskDag::priorities`]: the weighted longest path from the task
//!   to a DAG exit), so the owner pops the most critical task first while
//!   stealers take the least critical — the paper's thesis that measured time
//!   tracks the critical path, applied to the runtime itself. The injector is
//!   seeded in decreasing priority order too.
//!
//! All three schedulers preallocate every buffer from `dag.len()` during
//! setup, preserving the executor's **zero per-task allocation** guarantee
//! (verified by the counting-allocator integration test).
//!
//! The `_with` variants thread a per-worker **workspace** through the task
//! closure: `make_ws` is called once per worker thread (and once for the
//! sequential path), and every task executed by that worker receives a
//! mutable reference to its worker's workspace. With
//! [`tileqr_kernels::Workspace`] as the workspace type this makes the hot
//! loop allocation-free: all kernel scratch is preallocated before the first
//! task runs. Idle workers back off with
//! [`Backoff`](crate::sync::Backoff) (spin → yield → bounded park), so they
//! stop burning a core at the tail of the DAG.
//!
//! [`TaskDag::priorities`]: tileqr_core::dag::TaskDag::priorities

use std::sync::atomic::Ordering;

use crate::sync::shim::{AtomicBool, AtomicUsize};

use tileqr_core::dag::{SuccessorsCsr, TaskDag};
use tileqr_core::TaskKind;

use crate::sync::{Backoff, CancelToken, Steal, TaskQueue, WorkerDeque};

/// Executes every task of the DAG in topological order on the current
/// thread.
pub fn execute_sequential<F>(dag: &TaskDag, mut run: F)
where
    F: FnMut(TaskKind),
{
    for task in &dag.tasks {
        run(task.kind);
    }
}

/// Executes every task in topological order, threading a caller-provided
/// workspace through the task closure.
pub fn execute_sequential_with<W, F>(dag: &TaskDag, ws: &mut W, mut run: F)
where
    F: FnMut(TaskKind, &mut W),
{
    for task in &dag.tasks {
        run(task.kind, ws);
    }
}

/// Selects the ready-task scheduling policy of the parallel executor; see
/// the [module docs](self) for what each policy does.
///
/// The default is plain [`SchedulerKind::WorkStealing`]: LIFO owner pops
/// walk the DAG depth-first over the tiles the worker just touched, which
/// measures fastest when cores are scarce (the `bench_executor` ablation).
/// [`SchedulerKind::WorkStealingPriority`] trades some of that locality for
/// critical-path order — the right trade once the machine has enough cores
/// that the critical path, not the work, binds the makespan (the paper's
/// regime of interest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Single mutex-protected FIFO shared by all workers (legacy behavior,
    /// kept for ablation).
    LockedFifo,
    /// Per-worker Chase–Lev deques + global injector; LIFO owner pop, FIFO
    /// steal (the default).
    #[default]
    WorkStealing,
    /// Work stealing with owner deques ordered by weighted
    /// critical-path-to-exit priority.
    WorkStealingPriority,
}

impl SchedulerKind {
    /// Short display name (`"locked_fifo"`, `"work_stealing"`,
    /// `"ws_priority"`), used by the bench layer.
    pub const fn name(self) -> &'static str {
        match self {
            SchedulerKind::LockedFifo => "locked_fifo",
            SchedulerKind::WorkStealing => "work_stealing",
            SchedulerKind::WorkStealingPriority => "ws_priority",
        }
    }

    /// All scheduler kinds, for ablation sweeps.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::LockedFifo,
        SchedulerKind::WorkStealing,
        SchedulerKind::WorkStealingPriority,
    ];
}

/// A ready-task multiplexer between the workers of the parallel executor.
///
/// The executor drives the scheduler through three calls:
///
/// 1. [`Scheduler::seed`] once, before any worker starts, with every task
///    whose dependency count is zero;
/// 2. [`Scheduler::push_ready`] from worker `w` each time completing a task
///    enables a batch of successors (the batch slice is scratch owned by the
///    worker — implementations may reorder it in place). The scheduler may
///    hand one task of the batch straight back as a **work-first
///    continuation**: the worker runs it immediately, skipping a queue
///    round-trip — for chains of dependent tasks (the bulk of a tiled-QR
///    DAG) this removes the scheduler from the hot path entirely;
/// 3. [`Scheduler::pop`] from worker `w` to obtain the next task to run
///    when it has no continuation in hand.
///
/// Contract: every index handed to `seed`/`push_ready` must come back
/// exactly once — either as a `push_ready` continuation or from one `pop` —
/// and implementations must not allocate in `push_ready`/`pop` (all buffers
/// are sized from the DAG during construction). A `pop` returning `None` is
/// *transient* — the executor re-checks its completion counter and retries
/// with backoff.
pub trait Scheduler: Sync {
    /// Makes the initially-ready tasks available before the pool starts.
    /// The slice may be reordered in place.
    fn seed(&self, roots: &mut [usize]);

    /// Makes a batch of newly-enabled tasks available; called by worker `w`
    /// on its own hot path. The slice may be reordered in place. A returned
    /// task is *not* enqueued: the worker must run it next.
    fn push_ready(&self, w: usize, ready: &mut [usize]) -> Option<usize>;

    /// Returns the next task for worker `w`, or `None` if no runnable task
    /// was found right now.
    fn pop(&self, w: usize) -> Option<usize>;
}

/// The legacy scheduler: one mutex-protected FIFO shared by every worker.
pub struct LockedFifo {
    queue: TaskQueue,
}

impl LockedFifo {
    /// Builds the scheduler for a DAG of `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        LockedFifo {
            queue: TaskQueue::with_capacity(num_tasks),
        }
    }
}

impl Scheduler for LockedFifo {
    fn seed(&self, roots: &mut [usize]) {
        for &r in roots.iter() {
            self.queue.push(r);
        }
    }

    /// Everything goes through the shared queue — no work-first
    /// continuation, faithfully reproducing the pre-refactor executor for
    /// the ablation.
    fn push_ready(&self, _w: usize, ready: &mut [usize]) -> Option<usize> {
        for &r in ready.iter() {
            self.queue.push(r);
        }
        None
    }

    fn pop(&self, _w: usize) -> Option<usize> {
        self.queue.pop()
    }
}

/// Per-worker Chase–Lev deques with a global FIFO injector for the
/// initially-ready tasks.
pub struct WorkStealing {
    /// Initially-ready tasks; drained when a worker's own deque is empty.
    injector: TaskQueue,
    /// Set once the injector has been observed empty. Tasks enter the
    /// injector only during [`Scheduler::seed`], so "drained" is permanent
    /// and idle workers stop taking the injector lock on every miss.
    injector_drained: AtomicBool,
    /// One deque per worker; worker `w` owns `deques[w]`.
    deques: Vec<WorkerDeque>,
}

impl WorkStealing {
    /// Builds the scheduler: `workers` deques, each able to hold the whole
    /// DAG (`num_tasks` indices), so pushes can never overflow.
    pub fn new(num_tasks: usize, workers: usize) -> Self {
        WorkStealing {
            injector: TaskQueue::with_capacity(num_tasks),
            injector_drained: AtomicBool::new(false),
            deques: (0..workers.max(1))
                .map(|_| WorkerDeque::with_capacity(num_tasks))
                .collect(),
        }
    }

    /// Pop order shared by both stealing schedulers: own deque (LIFO), then
    /// the injector, then one stealing sweep over the siblings starting
    /// after `w` (so the victims are spread instead of all workers mobbing
    /// worker 0).
    #[inline]
    fn pop_from(&self, w: usize) -> Option<usize> {
        if let Some(task) = self.deques[w].pop() {
            return Some(task);
        }
        if !self.injector_drained.load(Ordering::Relaxed) {
            match self.injector.pop() {
                Some(task) => return Some(task),
                None => self.injector_drained.store(true, Ordering::Relaxed),
            }
        }
        let n = self.deques.len();
        for step in 1..n {
            let victim = (w + step) % n;
            loop {
                match self.deques[victim].steal() {
                    Steal::Success(task) => return Some(task),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

impl Scheduler for WorkStealing {
    fn seed(&self, roots: &mut [usize]) {
        for &r in roots.iter() {
            self.injector.push(r);
        }
    }

    /// Keeps the first successor (topological order — the tiles the worker
    /// just touched) as the work-first continuation and publishes the rest,
    /// reverse-pushed so the owner's LIFO pop visits them in original
    /// order.
    fn push_ready(&self, w: usize, ready: &mut [usize]) -> Option<usize> {
        let (&next, rest) = ready.split_first()?;
        for &r in rest.iter().rev() {
            self.deques[w].push(r);
        }
        Some(next)
    }

    fn pop(&self, w: usize) -> Option<usize> {
        self.pop_from(w)
    }
}

/// How [`WorkStealingPriority`] maps a global task id to its critical-path
/// rank.
enum PriorityRanking {
    /// One shared per-shape table reused cyclically: task `t` is ranked by
    /// `priority[t % period]`. Serves a single DAG (`period == len`) and a
    /// fused batch of identical copies (ids `copy * period + local`), with
    /// no per-call priority allocation.
    Cyclic {
        priority: std::sync::Arc<[u64]>,
        period: usize,
    },
    /// Heterogeneous fused group: copy `c` owns the contiguous id range
    /// `offsets[c] .. offsets[c + 1]` and ranks its tasks with its own
    /// shared per-shape table. Same prefix-sum geometry as
    /// [`ItemMap::from_counts`].
    Offsets {
        tables: Vec<std::sync::Arc<[u64]>>,
        offsets: Vec<usize>,
    },
}

impl PriorityRanking {
    #[inline]
    fn rank(&self, t: usize) -> u64 {
        match self {
            PriorityRanking::Cyclic { priority, period } => priority[t % period],
            PriorityRanking::Offsets { tables, offsets } => {
                let copy = offsets.partition_point(|&o| o <= t) - 1;
                tables[copy][t - offsets[copy]]
            }
        }
    }
}

/// Work stealing with critical-path priorities: each batch of newly-enabled
/// tasks is pushed so the owner pops the task with the largest weighted
/// critical-path-to-exit first, and stealers take the least critical one.
pub struct WorkStealingPriority {
    inner: WorkStealing,
    /// `rank(i)` = weighted longest path from task `i` to its DAG's exit
    /// ([`TaskDag::priorities`](tileqr_core::dag::TaskDag::priorities)),
    /// looked up through the shared per-shape table(s) so a reusable plan
    /// hands the same table to many jobs without copying it.
    ranking: PriorityRanking,
}

impl WorkStealingPriority {
    /// Builds the scheduler from precomputed per-task priorities.
    pub fn new(priority: Vec<u64>, workers: usize) -> Self {
        WorkStealingPriority::new_shared(priority.into(), workers)
    }

    /// Builds the scheduler from a shared priority table — the allocation-free
    /// path used by [`QrPlan`](crate::context::QrPlan), which computes the
    /// priorities once and reuses them for every factorization of the shape.
    pub fn new_shared(priority: std::sync::Arc<[u64]>, workers: usize) -> Self {
        WorkStealingPriority::new_shared_cyclic(priority, workers, 1)
    }

    /// Builds the scheduler for a fused batch of `copies` independent
    /// instances of one DAG: the deques hold `copies * priority.len()` task
    /// ids, and task `t` is ranked by `priority[t % priority.len()]` — every
    /// copy shares the single per-shape priority table, so batching adds no
    /// per-call priority allocation.
    pub fn new_shared_cyclic(
        priority: std::sync::Arc<[u64]>,
        workers: usize,
        copies: usize,
    ) -> Self {
        let period = priority.len().max(1);
        WorkStealingPriority {
            inner: WorkStealing::new(priority.len() * copies.max(1), workers),
            ranking: PriorityRanking::Cyclic { priority, period },
        }
    }

    /// Builds the scheduler for a *heterogeneous* fused group: `tables[c]`
    /// is copy `c`'s shared per-shape priority table, and copy `c` owns the
    /// contiguous global id range starting at the prefix sum of the earlier
    /// table lengths — the same `g → (copy, local)` contract as
    /// [`ItemMap::from_counts`]. Tables are `Arc` clones of each plan's
    /// cached priorities, so mixed groups cost one small `Vec` per job, not
    /// a fused priority table.
    pub fn new_shared_offsets(tables: Vec<std::sync::Arc<[u64]>>, workers: usize) -> Self {
        let mut offsets = Vec::with_capacity(tables.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for t in &tables {
            total += t.len();
            offsets.push(total);
        }
        WorkStealingPriority {
            inner: WorkStealing::new(total, workers),
            ranking: PriorityRanking::Offsets { tables, offsets },
        }
    }

    /// Sorts a batch by ascending priority, in place, without allocating
    /// (`sort_unstable` is in-place, and batches are bounded by the DAG's
    /// maximum out-degree — `O(q)` for tiled QR).
    #[inline]
    fn sort_ascending(&self, batch: &mut [usize]) {
        batch.sort_unstable_by_key(|&t| self.ranking.rank(t));
    }
}

impl Scheduler for WorkStealingPriority {
    fn seed(&self, roots: &mut [usize]) {
        // FIFO injector: push in *descending* priority so the first pops get
        // the most critical roots.
        self.sort_ascending(roots);
        for &r in roots.iter().rev() {
            self.inner.injector.push(r);
        }
    }

    /// Keeps the most critical successor as the work-first continuation and
    /// publishes the rest in ascending priority: LIFO owner pops then run
    /// higher priorities first while stealers take from the top — the least
    /// critical of the batch.
    fn push_ready(&self, w: usize, ready: &mut [usize]) -> Option<usize> {
        self.sort_ascending(ready);
        let (&next, rest) = ready.split_last()?;
        for &r in rest.iter() {
            self.inner.deques[w].push(r);
        }
        Some(next)
    }

    fn pop(&self, w: usize) -> Option<usize> {
        self.inner.pop_from(w)
    }
}

/// Executes the DAG on `num_threads` worker threads (workspace-free
/// compatibility wrapper over [`execute_parallel_with`]).
pub fn execute_parallel<F>(dag: &TaskDag, num_threads: usize, run: F)
where
    F: Fn(TaskKind) + Sync,
{
    execute_parallel_with(dag, num_threads, || (), |task, _ws: &mut ()| run(task));
}

/// Executes the DAG on `num_threads` worker threads with one workspace per
/// worker, using the default scheduler ([`SchedulerKind::WorkStealing`]).
pub fn execute_parallel_with<W, M, F>(dag: &TaskDag, num_threads: usize, make_ws: M, run: F)
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(TaskKind, &mut W) + Sync,
{
    execute_parallel_with_scheduler(dag, num_threads, SchedulerKind::default(), make_ws, run)
}

/// Executes the DAG on `num_threads` worker threads with one workspace per
/// worker and an explicit scheduling policy.
///
/// Every worker builds its own workspace with `make_ws` when it starts, then
/// repeatedly pops a ready task from the scheduler, runs it against its
/// workspace, and decrements the dependency counters of the task's
/// successors, handing the scheduler every task whose counter reaches zero.
/// The closure must be safe to call concurrently for tasks that are not
/// ordered by the DAG — the state module guarantees this by protecting each
/// tile with its own lock.
///
/// After the setup phase (scheduler buffers and counters sized to the DAG,
/// workspaces built per worker) the loop performs no heap allocations, for
/// every [`SchedulerKind`].
pub fn execute_parallel_with_scheduler<W, M, F>(
    dag: &TaskDag,
    num_threads: usize,
    scheduler: SchedulerKind,
    make_ws: M,
    run: F,
) where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(TaskKind, &mut W) + Sync,
{
    let n = dag.tasks.len();
    if n == 0 {
        return;
    }
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        let mut ws = make_ws();
        for task in &dag.tasks {
            run(task.kind, &mut ws);
        }
        return;
    }
    // One successor CSR serves both the dependency release loop and (for
    // the priority scheduler) the bottom-level computation.
    let succ = dag.successors_csr();
    match scheduler {
        SchedulerKind::LockedFifo => {
            run_pool(dag, &succ, num_threads, &LockedFifo::new(n), make_ws, run)
        }
        SchedulerKind::WorkStealing => run_pool(
            dag,
            &succ,
            num_threads,
            &WorkStealing::new(n, num_threads),
            make_ws,
            run,
        ),
        SchedulerKind::WorkStealingPriority => {
            let priorities = dag.priorities_with(&succ);
            run_pool(
                dag,
                &succ,
                num_threads,
                &WorkStealingPriority::new(priorities, num_threads),
                make_ws,
                run,
            )
        }
    }
}

/// Per-task dependency counters of a DAG, freshly initialized for one run.
pub(crate) fn dependency_counters(dag: &TaskDag) -> Vec<AtomicUsize> {
    dag.tasks
        .iter()
        .map(|t| AtomicUsize::new(t.deps.len()))
        .collect()
}

/// Indices of the initially-ready tasks (no dependencies), in topological
/// order.
pub(crate) fn initial_roots(dag: &TaskDag) -> Vec<usize> {
    dag.tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.deps.is_empty())
        .map(|(idx, _)| idx)
        .collect()
}

/// Maps a global task id of a fused group to `(copy, local)`.
///
/// A fused pool job runs several independent DAG instances ("copies") under
/// one scheduler. Global ids are assigned contiguously per copy: copy `c`
/// owns `base(c) .. base(c) + tasks_of(c)`. Two representations share the
/// type:
///
/// * **Uniform** (`stride != 0`): every copy has `stride` tasks, so
///   `locate` is `g → (g / stride, g % stride)` — bit-for-bit the
///   historical cyclic mapping of same-plan batches, with no per-call
///   allocation (`offsets` stays empty).
/// * **Heterogeneous** (`stride == 0`): `offsets` is the task-count prefix
///   sum (`offsets[c]` = first id of copy `c`, `offsets.len() == copies + 1`)
///   and `locate` binary-searches it — `O(log copies)` on a group bounded
///   by the service's `max_group`.
///
/// [`ItemMap::from_counts`] detects the all-equal case and collapses it to
/// the uniform form, so same-plan groups keep the exact pre-offset id
/// arithmetic on every path that consumes the map.
pub(crate) struct ItemMap {
    /// Tasks per copy when uniform; `0` flags the heterogeneous form.
    stride: usize,
    #[cfg_attr(not(test), allow(dead_code))]
    copies: usize,
    total: usize,
    /// Prefix-sum id offsets (heterogeneous form only; empty when uniform).
    offsets: Vec<usize>,
}

impl ItemMap {
    /// A group of `copies` identical DAGs of `local_tasks` tasks each.
    pub(crate) fn uniform(local_tasks: usize, copies: usize) -> Self {
        let local_tasks = local_tasks.max(1);
        ItemMap {
            stride: local_tasks,
            copies,
            total: local_tasks * copies,
            offsets: Vec::new(),
        }
    }

    /// A group described by one task count per copy.
    pub(crate) fn from_counts(counts: &[usize]) -> Self {
        if let Some(&first) = counts.first() {
            if counts.iter().all(|&c| c == first) {
                return ItemMap::uniform(first, counts.len());
            }
        }
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &c in counts {
            total += c;
            offsets.push(total);
        }
        ItemMap {
            stride: 0,
            copies: counts.len(),
            total,
            offsets,
        }
    }

    /// Number of DAG copies in the group.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn copies(&self) -> usize {
        self.copies
    }

    /// Total task count across all copies.
    #[inline]
    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// First global id of `copy`.
    #[inline]
    pub(crate) fn base(&self, copy: usize) -> usize {
        if self.stride != 0 {
            copy * self.stride
        } else {
            self.offsets[copy]
        }
    }

    /// Task count of `copy`.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn tasks_of(&self, copy: usize) -> usize {
        if self.stride != 0 {
            self.stride
        } else {
            self.offsets[copy + 1] - self.offsets[copy]
        }
    }

    /// `g → (copy, local)`.
    #[inline]
    // `stride != 0` selects the uniform mode, it is not a div-by-zero guard.
    #[allow(clippy::manual_checked_ops)]
    pub(crate) fn locate(&self, g: usize) -> (usize, usize) {
        if self.stride != 0 {
            (g / self.stride, g % self.stride)
        } else {
            let copy = self.offsets.partition_point(|&o| o <= g) - 1;
            (copy, g - self.offsets[copy])
        }
    }
}

/// Successor adjacency of a fused group: one shared per-shape CSR when every
/// copy runs the same DAG (same-plan groups, single runs), or one CSR
/// reference per copy for heterogeneous groups.
#[derive(Clone, Copy)]
pub(crate) enum GroupSucc<'a> {
    /// All copies share one CSR.
    Shared(&'a SuccessorsCsr),
    /// `per_copy[c]` is copy `c`'s CSR.
    PerCopy(&'a [&'a SuccessorsCsr]),
}

impl GroupSucc<'_> {
    #[inline]
    fn of_copy(&self, copy: usize) -> &SuccessorsCsr {
        match self {
            GroupSucc::Shared(csr) => csr,
            GroupSucc::PerCopy(per_copy) => per_copy[copy],
        }
    }
}

/// Receives contained task panics from [`drive_worker`] and answers which
/// batch copies have already failed (so their remaining tasks are skipped —
/// counted as released, never executed).
///
/// Implemented by the context's per-batch item tracker; the executor itself
/// stays ignorant of [`QrError`](crate::context::QrError).
pub(crate) trait FaultSink: Sync {
    /// True if `copy` has already recorded a fault; its tasks are skipped.
    fn copy_failed(&self, copy: usize) -> bool;

    /// Records a panic raised by task `local` of `copy`. Called at most once
    /// per panicking task; the first recorded fault of a copy wins.
    fn record_panic(&self, copy: usize, local: usize, payload: &(dyn std::any::Any + Send));

    /// Counts one task of `copy` as retired (executed *or* skipped); a copy
    /// whose retired count reaches the DAG length without a recorded fault
    /// completed successfully.
    ///
    /// This is also the generalized per-item completion hook: the retire of
    /// a copy's *last* task is detectable inside this call (the tracker's
    /// retire count equals the DAG length), and it fires on the worker
    /// thread that performed it. The batch path only tallies here; the
    /// streaming path (`StreamJob` in `context.rs`, behind the service
    /// layer) dismantles the finished copy and resolves its ticket from
    /// this hook, while sibling copies are still running.
    fn task_retired(&self, copy: usize);
}

/// Everything one [`drive_worker`] call shares with its sibling workers:
/// the fused-DAG geometry, the per-run counters, and the optional
/// robustness hooks (cancellation, heartbeat, panic containment).
pub(crate) struct DriveCtl<'a> {
    /// Total task count of the (fused) run; the loop exits when `completed`
    /// reaches it.
    pub(crate) num_tasks: usize,
    /// Global-id geometry of the run: `map.locate(g)` resolves every task id
    /// to its `(copy, local)` pair. Uniform for single runs and same-plan
    /// batches (the historical `g → (g / n, g % n)` arithmetic);
    /// prefix-sum offsets for heterogeneous fused groups.
    pub(crate) map: &'a ItemMap,
    /// Per-copy successor adjacency, indexed by the local id from `map`.
    pub(crate) succ: GroupSucc<'a>,
    /// Per-task dependency counters of the whole fused run.
    pub(crate) remaining: &'a [AtomicUsize],
    /// Tasks completed so far across all workers.
    pub(crate) completed: &'a AtomicUsize,
    /// Legacy abort flag: raised when a worker panics in abort mode
    /// (`faults: None`); sibling workers exit instead of spinning.
    pub(crate) aborted: &'a AtomicBool,
    /// Largest successor batch one completion can enable.
    pub(crate) max_out_degree: usize,
    /// Checked once per loop iteration; a triggered token makes workers
    /// abandon the remaining tasks and return.
    pub(crate) cancel: Option<&'a CancelToken>,
    /// Panic policy: `None` — a task panic raises `aborted` and unwinds out
    /// (the scoped executor's contract, re-raised by the caller); `Some` —
    /// the panic is caught, reported to the sink, and only that task's copy
    /// is poisoned while siblings keep running.
    pub(crate) faults: Option<&'a dyn FaultSink>,
}

/// One worker's share of a DAG run: pop ready tasks from the scheduler, run
/// them, release successors, hand newly-enabled batches back to the
/// scheduler, and back off when idle until every one of `ctl.num_tasks`
/// tasks completed (or a sibling aborted, or the cancel token fired).
///
/// The loop is phrased over **raw task ids** so the same code serves every
/// caller: the scoped executor ([`execute_parallel_with_scheduler`]), the
/// single-factorization pool jobs of [`QrContext`](crate::context::QrContext),
/// the *fused batch* jobs of
/// [`QrContext::factorize_batch`](crate::context::QrContext::factorize_batch),
/// and the service layer's heterogeneous fused groups. `ctl.map` resolves a
/// global id to `(copy, local)` — uniform stride division for same-plan
/// groups (bit-for-bit the historical `g → (g / n, g % n)` mapping),
/// prefix-sum offsets for mixed-plan groups — and `ctl.succ` hands back the
/// copy's own successor CSR, so no per-call fused adjacency is ever
/// materialized. Released successors stay within the task's copy by
/// offsetting local successor ids with the copy's base. For a single DAG the
/// id arithmetic is the identity. Same-plan paths are bitwise equivalent by
/// construction because they run exactly this code over the same per-tile
/// kernel ordering.
///
/// Panic handling depends on `ctl.faults` — see [`DriveCtl::faults`]. In
/// containment mode a failed copy's remaining tasks still *retire* (their
/// successor counters are released and `completed` advances) so the fused
/// run drains normally; they are never executed.
///
/// `heartbeat` is this worker's progress counter (pool workers pass theirs;
/// the scoped executor passes `None`): it is bumped once per **retired
/// task**, never while idling, so a run whose workers all spin without
/// retiring anything — the shape of a lost-task deadlock — is visible to the
/// pool watchdog as a flat heartbeat sum.
pub(crate) fn drive_worker<S: Scheduler + ?Sized>(
    ctl: &DriveCtl<'_>,
    sched: &S,
    w: usize,
    heartbeat: Option<&AtomicUsize>,
    run: &mut dyn FnMut(usize),
) {
    debug_assert_eq!(ctl.map.total(), ctl.num_tasks);
    // Arms while a task runs in abort mode; if the task panics the unwind
    // runs this Drop, flagging every other worker to exit so the caller can
    // join them and propagate the panic instead of deadlocking on
    // `completed < n`.
    struct AbortOnPanic<'a>(&'a AtomicBool);
    impl Drop for AbortOnPanic<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }

    // Scratch for the largest possible batch of newly-enabled successors —
    // allocated once per worker per run, never on the per-task path.
    let mut enabled: Vec<usize> = Vec::with_capacity(ctl.max_out_degree);
    let mut backoff = Backoff::new();
    // Work-first continuation handed back by `push_ready`: run it directly,
    // skipping the queue round-trip.
    let mut next: Option<usize> = None;
    loop {
        if ctl.aborted.load(Ordering::Acquire) {
            break;
        }
        if let Some(token) = ctl.cancel {
            if token.is_cancelled() {
                break;
            }
        }
        match next.take().or_else(|| sched.pop(w)) {
            Some(idx) => {
                backoff.reset();
                let (copy, local) = ctl.map.locate(idx);
                match ctl.faults {
                    None => {
                        let guard = AbortOnPanic(ctl.aborted);
                        run(idx);
                        std::mem::forget(guard);
                    }
                    Some(sink) => {
                        // A failed copy's tasks are skipped, not executed;
                        // they still retire below so the run drains.
                        if !sink.copy_failed(copy) {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(idx)));
                            if let Err(payload) = result {
                                sink.record_panic(copy, local, &*payload);
                            }
                        }
                        sink.task_retired(copy);
                    }
                }
                if let Some(hb) = heartbeat {
                    // Single-writer counter: a plain load+store is enough
                    // and avoids a locked RMW on the per-task path.
                    hb.store(hb.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
                }
                ctl.completed.fetch_add(1, Ordering::Release);
                // Successors stay within the task's own DAG copy: look up
                // the copy's CSR by the local id, offset the released ids
                // back into the copy's global range.
                let base = idx - local;
                enabled.clear();
                for &s in ctl.succ.of_copy(copy).of(local) {
                    let g = base + s;
                    if ctl.remaining[g].fetch_sub(1, Ordering::AcqRel) == 1 {
                        enabled.push(g);
                    }
                }
                if !enabled.is_empty() {
                    next = sched.push_ready(w, &mut enabled);
                }
            }
            None => {
                if ctl.completed.load(Ordering::Acquire) >= ctl.num_tasks {
                    break;
                }
                backoff.snooze();
            }
        }
    }
}

/// The worker pool, generic (monomorphized) over the scheduler so the hot
/// loop pays no virtual dispatch.
fn run_pool<S, W, M, F>(
    dag: &TaskDag,
    succ: &SuccessorsCsr,
    num_threads: usize,
    sched: &S,
    make_ws: M,
    run: F,
) where
    S: Scheduler,
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(TaskKind, &mut W) + Sync,
{
    let n = dag.tasks.len();
    let remaining = dependency_counters(dag);
    let max_out_degree = succ.max_out_degree();
    let mut roots = initial_roots(dag);
    sched.seed(&mut roots);
    let completed = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);

    let map = ItemMap::uniform(n, 1);
    let ctl = DriveCtl {
        num_tasks: n,
        map: &map,
        succ: GroupSucc::Shared(succ),
        remaining: &remaining,
        completed: &completed,
        aborted: &aborted,
        max_out_degree,
        cancel: None,
        faults: None,
    };
    std::thread::scope(|scope| {
        for w in 0..num_threads {
            let ctl = &ctl;
            let sched = &sched;
            let make_ws = &make_ws;
            let run = &run;
            scope.spawn(move || {
                let mut ws = make_ws();
                drive_worker(ctl, *sched, w, None, &mut |idx| {
                    run(dag.tasks[idx].kind, &mut ws)
                });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::collections::HashSet;
    use tileqr_core::algorithms::Algorithm;
    use tileqr_core::KernelFamily;

    fn sample_dag(p: usize, q: usize) -> TaskDag {
        TaskDag::build(&Algorithm::Greedy.elimination_list(p, q), KernelFamily::TT)
    }

    #[test]
    fn sequential_visits_every_task_once() {
        let dag = sample_dag(6, 3);
        let mut seen = Vec::new();
        execute_sequential(&dag, |k| seen.push(k));
        assert_eq!(seen.len(), dag.len());
        let unique: HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), dag.len());
    }

    #[test]
    fn parallel_visits_every_task_once_with_every_scheduler() {
        let dag = sample_dag(8, 4);
        for kind in SchedulerKind::ALL {
            let seen = Mutex::new(HashSet::new());
            execute_parallel_with_scheduler(
                &dag,
                4,
                kind,
                || (),
                |k, _ws: &mut ()| {
                    assert!(seen.lock().insert(k), "task executed twice: {k:?}");
                },
            );
            assert_eq!(seen.lock().len(), dag.len(), "scheduler {}", kind.name());
        }
    }

    #[test]
    fn parallel_respects_dependencies_with_every_scheduler() {
        // Record completion order and verify that every dependency finished
        // before its dependent started. We log positions under a lock.
        let dag = sample_dag(7, 3);
        for kind in SchedulerKind::ALL {
            let order = Mutex::new(Vec::new());
            execute_parallel_with_scheduler(
                &dag,
                3,
                kind,
                || (),
                |k, _ws: &mut ()| {
                    order.lock().push(k);
                },
            );
            let order = order.into_inner();
            let position: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, k)| (*k, i)).collect();
            for task in &dag.tasks {
                let me = position[&task.kind];
                for &d in &task.deps {
                    let dep = position[&dag.tasks[d].kind];
                    assert!(
                        dep < me,
                        "[{}] dependency ran after dependent: {:?} -> {:?}",
                        kind.name(),
                        dag.tasks[d].kind,
                        task.kind
                    );
                }
            }
        }
    }

    #[test]
    fn empty_dag_is_a_noop() {
        let dag = TaskDag::build(
            &Algorithm::FlatTree.elimination_list(1, 1),
            KernelFamily::TT,
        );
        // a 1x1 grid has a single GEQRT; build a truly empty DAG by filtering
        let empty = TaskDag {
            p: 0,
            q: 0,
            family: KernelFamily::TT,
            tasks: Vec::new(),
        };
        let mut count = 0;
        execute_sequential(&empty, |_| count += 1);
        execute_parallel(&empty, 4, |_| panic!("should not run"));
        assert_eq!(count, 0);
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn single_thread_parallel_falls_back_to_sequential_order() {
        let dag = sample_dag(5, 2);
        for kind in SchedulerKind::ALL {
            let seen = Mutex::new(Vec::new());
            execute_parallel_with_scheduler(
                &dag,
                1,
                kind,
                || (),
                |k, _ws: &mut ()| seen.lock().push(k),
            );
            let seen = seen.into_inner();
            let sequential: Vec<_> = dag.tasks.iter().map(|t| t.kind).collect();
            assert_eq!(seen, sequential);
        }
    }

    #[test]
    fn each_worker_gets_its_own_workspace() {
        // Workspaces are identified by a creation counter; every task records
        // which workspace it ran with, and the number of distinct workspaces
        // must not exceed the worker count.
        let dag = sample_dag(8, 4);
        let counter = AtomicUsize::new(0);
        let used = Mutex::new(HashSet::new());
        let tasks = Mutex::new(0usize);
        execute_parallel_with(
            &dag,
            4,
            || counter.fetch_add(1, Ordering::SeqCst),
            |_task, ws_id| {
                used.lock().insert(*ws_id);
                *tasks.lock() += 1;
            },
        );
        assert_eq!(*tasks.lock(), dag.len());
        let created = counter.load(Ordering::SeqCst);
        assert_eq!(created, 4, "one workspace per worker");
        assert!(!used.lock().is_empty() && used.lock().len() <= 4);
    }

    #[test]
    fn task_panic_propagates_instead_of_hanging() {
        // A panicking task must flag the other workers to exit so the thread
        // scope can join and re-raise the panic (previously the pool spun
        // forever on `completed < n`).
        let dag = sample_dag(8, 4);
        let poison = dag.tasks[dag.len() / 2].kind;
        for kind in SchedulerKind::ALL {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_parallel_with_scheduler(
                    &dag,
                    4,
                    kind,
                    || (),
                    |k, _ws: &mut ()| {
                        if k == poison {
                            panic!("injected task failure");
                        }
                    },
                );
            }));
            assert!(result.is_err(), "panic was swallowed by {}", kind.name());
        }
    }

    #[test]
    fn sequential_with_reuses_one_workspace() {
        let dag = sample_dag(5, 2);
        let mut ws = 0usize;
        let mut count = 0usize;
        execute_sequential_with(&dag, &mut ws, |_k, ws| {
            *ws += 1;
            count += 1;
        });
        assert_eq!(ws, dag.len());
        assert_eq!(count, dag.len());
    }

    #[test]
    fn scheduler_kind_defaults_to_work_stealing() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::WorkStealing);
        let names: HashSet<_> = SchedulerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn priority_scheduler_runs_critical_roots_first_single_consumer() {
        // Seed the priority scheduler with shuffled roots and drain it from
        // one worker with no pushes: the injector must yield them in
        // decreasing priority order.
        let priority = vec![5u64, 40, 10, 7, 99, 1];
        let sched = WorkStealingPriority::new(priority.clone(), 2);
        let mut roots = vec![0usize, 1, 2, 3, 4, 5];
        sched.seed(&mut roots);
        let mut got = Vec::new();
        while let Some(t) = sched.pop(0) {
            got.push(t);
        }
        let drained: Vec<u64> = got.iter().map(|&t| priority[t]).collect();
        assert_eq!(drained, vec![99, 40, 10, 7, 5, 1]);
    }

    #[test]
    fn priority_scheduler_runs_batches_most_critical_first() {
        let priority = vec![3u64, 8, 1, 12];
        let sched = WorkStealingPriority::new(priority, 1);
        let mut batch = vec![0usize, 1, 2, 3];
        // The most critical task comes back as the work-first continuation;
        // the rest pop in decreasing priority.
        assert_eq!(sched.push_ready(0, &mut batch), Some(3)); // priority 12
        assert_eq!(sched.pop(0), Some(1)); // priority 8
        assert_eq!(sched.pop(0), Some(0)); // priority 3
        assert_eq!(sched.pop(0), Some(2)); // priority 1
        assert_eq!(sched.pop(0), None);
    }

    #[test]
    fn item_map_uniform_matches_historical_cyclic_arithmetic() {
        let map = ItemMap::uniform(7, 4);
        assert_eq!(map.copies(), 4);
        assert_eq!(map.total(), 28);
        for g in 0..map.total() {
            assert_eq!(map.locate(g), (g / 7, g % 7));
        }
        for c in 0..4 {
            assert_eq!(map.base(c), c * 7);
            assert_eq!(map.tasks_of(c), 7);
        }
    }

    #[test]
    fn item_map_equal_counts_collapse_to_uniform() {
        let map = ItemMap::from_counts(&[5, 5, 5]);
        assert_eq!(map.stride, 5, "same-plan groups must take the uniform path");
        assert!(map.offsets.is_empty());
        for g in 0..15 {
            assert_eq!(map.locate(g), (g / 5, g % 5));
        }
    }

    #[test]
    fn item_map_heterogeneous_is_a_bijection_over_disjoint_ranges() {
        let counts = [3usize, 7, 1, 4];
        let map = ItemMap::from_counts(&counts);
        assert_eq!(map.copies(), 4);
        assert_eq!(map.total(), 15);
        let mut seen = HashSet::new();
        for g in 0..map.total() {
            let (copy, local) = map.locate(g);
            assert!(copy < map.copies());
            assert!(local < map.tasks_of(copy));
            assert_eq!(map.base(copy) + local, g);
            assert!(seen.insert((copy, local)), "id {g} not unique");
        }
        assert_eq!(seen.len(), map.total());
        for (c, &count) in counts.iter().enumerate() {
            assert_eq!(map.tasks_of(c), count);
        }
    }

    #[test]
    fn priority_offsets_ranks_each_copy_by_its_own_table() {
        // copy 0: ids 0..3 with priorities [3, 8, 1]; copy 1: ids 3..5 with
        // priorities [12, 2]. Continuation and pops must follow the fused
        // per-copy ranks, not any shared cyclic table.
        let tables: Vec<std::sync::Arc<[u64]>> =
            vec![vec![3u64, 8, 1].into(), vec![12u64, 2].into()];
        let sched = WorkStealingPriority::new_shared_offsets(tables, 1);
        let mut batch = vec![0usize, 1, 2, 3, 4];
        assert_eq!(sched.push_ready(0, &mut batch), Some(3)); // rank 12
        assert_eq!(sched.pop(0), Some(1)); // rank 8
        assert_eq!(sched.pop(0), Some(0)); // rank 3
        assert_eq!(sched.pop(0), Some(4)); // rank 2
        assert_eq!(sched.pop(0), Some(2)); // rank 1
        assert_eq!(sched.pop(0), None);
    }

    #[test]
    fn fused_heterogeneous_copies_run_once_and_respect_deps() {
        // Two *different* DAGs fused under one scheduler through the offset
        // map: every task of each copy runs exactly once, and dependencies
        // hold within each copy.
        let dag_a = sample_dag(6, 3);
        let dag_b = TaskDag::build(
            &Algorithm::FlatTree.elimination_list(4, 2),
            KernelFamily::TS,
        );
        assert_ne!(dag_a.len(), dag_b.len(), "copies must be heterogeneous");
        let succ_a = dag_a.successors_csr();
        let succ_b = dag_b.successors_csr();
        let map = ItemMap::from_counts(&[dag_a.len(), dag_b.len()]);
        assert_eq!(map.total(), dag_a.len() + dag_b.len());
        let per_copy = [&succ_a, &succ_b];
        let dags = [&dag_a, &dag_b];

        let remaining: Vec<AtomicUsize> = dags
            .iter()
            .flat_map(|d| d.tasks.iter().map(|t| AtomicUsize::new(t.deps.len())))
            .collect();
        let mut roots: Vec<usize> = Vec::new();
        for (c, d) in dags.iter().enumerate() {
            let base = map.base(c);
            roots.extend(
                d.tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.deps.is_empty())
                    .map(|(i, _)| base + i),
            );
        }
        let tables: Vec<std::sync::Arc<[u64]>> = vec![
            dag_a.priorities_with(&succ_a).into(),
            dag_b.priorities_with(&succ_b).into(),
        ];
        let sched = WorkStealingPriority::new_shared_offsets(tables, 3);
        sched.seed(&mut roots);
        let completed = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let ctl = DriveCtl {
            num_tasks: map.total(),
            map: &map,
            succ: GroupSucc::PerCopy(&per_copy),
            remaining: &remaining,
            completed: &completed,
            aborted: &aborted,
            max_out_degree: succ_a.max_out_degree().max(succ_b.max_out_degree()),
            cancel: None,
            faults: None,
        };
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..3 {
                let ctl = &ctl;
                let sched = &sched;
                let order = &order;
                scope.spawn(move || {
                    drive_worker(ctl, sched, w, None, &mut |g| {
                        order.lock().push(g);
                    });
                });
            }
        });
        let order = order.into_inner();
        assert_eq!(order.len(), map.total());
        let position: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        assert_eq!(position.len(), map.total(), "a task ran twice");
        for (c, d) in dags.iter().enumerate() {
            let base = map.base(c);
            for (i, t) in d.tasks.iter().enumerate() {
                for &dep in &t.deps {
                    assert!(
                        position[&(base + dep)] < position[&(base + i)],
                        "copy {c}: dependency {dep} ran after dependent {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn work_stealing_pop_prefers_own_deque_then_injector_then_steal() {
        let sched = WorkStealing::new(16, 2);
        sched.seed(&mut [7usize]);
        // First of each batch is the work-first continuation; the rest go
        // to the pushing worker's own deque.
        assert_eq!(sched.push_ready(0, &mut [1usize, 2]), Some(1));
        assert_eq!(sched.push_ready(1, &mut [8usize, 9]), Some(8));
        // Own deque first (batch in original order), then injector, then
        // steal from worker 1.
        assert_eq!(sched.pop(0), Some(2));
        assert_eq!(sched.pop(0), Some(7));
        assert_eq!(sched.pop(0), Some(9));
        assert_eq!(sched.pop(0), None);
    }

    #[test]
    fn locked_fifo_never_hands_back_a_continuation() {
        let sched = LockedFifo::new(8);
        assert_eq!(sched.push_ready(0, &mut [4usize, 5]), None);
        assert_eq!(sched.pop(0), Some(4));
        assert_eq!(sched.pop(1), Some(5));
        assert_eq!(sched.pop(0), None);
    }
}
