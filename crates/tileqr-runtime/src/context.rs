//! Session-style factorization API: [`QrContext`] + [`QrPlan`].
//!
//! The free functions of [`crate::driver`] are one-shot: every call re-tiles
//! the matrix, rebuilds the elimination list and [`TaskDag`], reallocates all
//! scratch, and spawns a fresh set of worker threads. That is the right shape
//! for a single large factorization, but a service factoring a *stream* of
//! moderate-size matrices pays the planning and pool-startup cost on every
//! request. This module splits the API the way PLASMA splits it:
//!
//! * [`QrContext`] — the long-lived runtime: a persistent, parkable worker
//!   pool (built once from `threads` + [`SchedulerKind`]; workers idle
//!   through the executor's [`Backoff`](crate::sync::Backoff) between jobs
//!   instead of being respawned) plus the scheduling policy.
//! * [`QrPlan`] — the reusable schedule for one problem shape
//!   `(m, n, nb, ib, algorithm, family)`: the elimination list, the task
//!   DAG with its CSR successor lists, the critical-path priorities
//!   (computed lazily, shared by every job), and a checkout cache of
//!   per-worker kernel [`Workspace`]s. Building a plan is the *planning*
//!   phase; executing it is pure kernel time.
//! * [`QrError`] — typed errors replacing the driver's panics: bad shapes,
//!   zero tile sizes and oversized thread counts are reported as values.
//! * [`QrReflectors`] — the result of the in-place path
//!   [`QrContext::factorize_into`], which factors caller-owned tile storage
//!   without the dense→tiled copy and hands back only the `T` factors.
//!
//! # Batched factorization
//!
//! A service factoring many *small* matrices of one shape pays the pool
//! wake-up (epoch bump + unpark + park-tier wake latency) per call even with
//! a reused plan — for a 6 × 3-tile problem that overhead rivals the kernel
//! time itself. [`QrContext::factorize_batch`] (and the in-place
//! [`QrContext::factorize_batch_into`]) submits `k` independent matrices as
//! **one fused pool job**: task ids are the plan's DAG tiled `k` times
//! (`copy * tasks + local`), the per-shape CSR successor lists and
//! critical-path priorities are reused cyclically instead of re-materialized,
//! and the work-stealing deques load-balance freely *across* matrices — the
//! PLASMA insight that one DAG-driven pool amortizes over problems, not just
//! tiles. Per-item shape errors are isolated ([`Result`] per matrix); the
//! valid items still run.
//!
//! The last per-call allocation of the hot path — the `T`-factor storage —
//! recycles through the plan: [`QrPlan::recycle`] /
//! [`QrPlan::recycle_reflectors`] return a consumed result's `ib × nb`
//! buffers to a checkout pool the next factorization draws from (zeroed in
//! place, so results stay bitwise identical to the fresh-allocation path).
//! A steady-state loop of `factorize_batch_into` + `recycle_reflectors` over
//! refilled tile buffers performs only a fixed, small *number* of heap
//! allocations per call — none per task, per tile or per `T` factor. (The
//! few per-call bookkeeping buffers that remain — dependency counters,
//! scheduler deques — are each one allocation whose *size* scales with the
//! fused DAG; the counting-allocator test pins the count.)
//!
//! ```
//! use tileqr_matrix::{generate::random_matrix, Matrix};
//! use tileqr_runtime::{QrConfig, QrContext, QrPlan};
//!
//! let a: Matrix<f64> = random_matrix(96, 48, 7);
//! let ctx = QrContext::new(2).unwrap();
//! let plan: QrPlan<f64> = QrPlan::new(96, 48, QrConfig::new(16)).unwrap();
//! for _ in 0..4 {
//!     let f = ctx.factorize(&plan, &a).unwrap(); // only kernel time after call 1
//!     assert!(f.residual(&a) < 1e-11);
//! }
//! ```
//!
//! Every execution path of the context (sequential, and each scheduler on
//! the persistent pool) runs the same kernels in a DAG-respecting order, so
//! results are **bitwise identical** to the legacy free functions — the
//! equivalence suite pins this down for `f64` and `Complex64`.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use tileqr_core::algorithms::Algorithm;
use tileqr_core::dag::{KernelFamily, SuccessorsCsr, TaskDag, TaskKind};
use tileqr_kernels::{Trans, Workspace};
use tileqr_matrix::{Matrix, Scalar, TiledMatrix};

use crate::driver::{elimination_list_for, replay_q, QrConfig, QrFactorization};
use crate::executor::{
    drive_worker, DriveCtl, FaultSink, GroupSucc, ItemMap, LockedFifo, Scheduler, SchedulerKind,
    WorkStealing, WorkStealingPriority,
};
use crate::pool::{payload_message, Job, RunCtl, WorkerPool};
use crate::state::FactorizationState;
use crate::sync::shim::{AtomicBool, AtomicUsize};
use crate::sync::{Backoff, CancelCause, CancelToken, ClaimFlag, Mutex};

/// Hard upper bound on the worker-thread count of a [`QrContext`]; requests
/// beyond it are configuration mistakes (the pool would oversubscribe any
/// real machine by orders of magnitude) and are rejected as
/// [`QrError::TooManyThreads`].
pub const MAX_THREADS: usize = 1024;

/// Typed errors of the session API ([`QrContext`] / [`QrPlan`]).
///
/// The legacy free functions ([`crate::driver::qr_factorize`] & co.) keep
/// their documented panicking behavior; the context API reports the same
/// conditions as values.
///
/// # Retry safety
///
/// Service clients ([`crate::service::QrService`]) classify every variant as
/// either **transient** — resubmitting the *same* input later can reasonably
/// succeed — or **deterministic** — the same input will fail the same way, so
/// a retry only burns capacity. [`QrError::is_transient`] encodes the
/// classification, and the service's retry layer consults it: transient
/// failures are retried (bounded attempts, decorrelated backoff),
/// deterministic ones are surfaced immediately. Per-variant docs note which
/// side each lands on; the transient set is [`QrError::TaskPanicked`],
/// [`QrError::Stalled`] and [`QrError::QueueFull`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QrError {
    /// The matrix is wide (`m < n`); tiled QR requires tall or square.
    WideMatrix {
        /// Row count of the offending matrix.
        m: usize,
        /// Column count of the offending matrix.
        n: usize,
    },
    /// The configured tile size is zero.
    ZeroTileSize,
    /// A context with zero worker threads was requested.
    ZeroThreads,
    /// More worker threads than [`MAX_THREADS`] were requested.
    TooManyThreads {
        /// The requested thread count.
        requested: usize,
        /// The maximum the context accepts.
        max: usize,
    },
    /// The dense matrix handed to [`QrContext::factorize`] does not have the
    /// shape the plan was built for.
    ShapeMismatch {
        /// `(m, n)` the plan was built for.
        expected: (usize, usize),
        /// `(m, n)` of the matrix actually supplied.
        got: (usize, usize),
    },
    /// The tiled matrix handed to [`QrContext::factorize_into`] does not
    /// match the plan's tile grid.
    PlanMismatch {
        /// `(p, q, nb)` the plan was built for.
        expected: (usize, usize, usize),
        /// `(p, q, nb)` of the tiles actually supplied.
        got: (usize, usize, usize),
    },
    /// A right-hand side's length does not match the factored matrix.
    RhsLength {
        /// Expected length (`m` of the factored matrix).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A kernel task panicked while factorizing this item. The panic was
    /// contained: only this batch item failed, its sibling items completed
    /// normally, and the pool survived. The item's output (tiles, `T`
    /// factors) holds partial garbage and must be refilled before reuse.
    ///
    /// **Transient** (retry-safe): a contained panic is environmental from
    /// the submitter's point of view (a wedged worker, an injected fault) —
    /// re-running the same input is reasonable and is what the service's
    /// retry layer does.
    TaskPanicked {
        /// The kernel task that panicked.
        kind: TaskKind,
        /// The panic message (string payloads verbatim, a placeholder for
        /// non-string payloads).
        message: String,
    },
    /// The factorization was cancelled through
    /// [`QrContext::cancel_handle`]. Batch items that had already finished
    /// when the cancellation was observed still return `Ok`.
    ///
    /// **Deterministic** (never auto-retried): cancellation is a caller
    /// decision; silently re-running cancelled work would defeat it.
    Cancelled,
    /// A `*_with_deadline` call ran past its deadline. Batch items that had
    /// already finished still return `Ok`.
    ///
    /// **Deterministic** (never auto-retried): the deadline belongs to the
    /// caller; retrying past it cannot make the result arrive in time.
    DeadlineExceeded,
    /// The pool watchdog ([`QrContext::with_watchdog`]) saw no progress from
    /// any worker for longer than the configured bound and cancelled the
    /// job.
    ///
    /// **Transient** (retry-safe): a stall is a scheduling/environment
    /// pathology, not a property of the input — the chance it recurs on a
    /// fresh run is exactly what bounded retries with backoff are for.
    Stalled,
    /// Spawning a pool worker thread failed ([`QrContext::new`] /
    /// [`QrContext::with_scheduler`]).
    ThreadSpawn {
        /// The underlying OS error, rendered.
        details: String,
    },
    /// The opt-in [`QrConfig::check_finite`] pre-submission scan found a NaN
    /// or infinity; the input was rejected before any kernel ran and the
    /// caller's buffers are untouched.
    ///
    /// **Deterministic** (never auto-retried): the NaN is in the data; it
    /// will still be there on the next attempt.
    NonFiniteInput {
        /// Row of the first non-finite entry (column-major scan order).
        row: usize,
        /// Column of the first non-finite entry.
        col: usize,
    },
    /// The service's bounded admission queue rejected the submission: the
    /// queue was at capacity ([`ServiceConfig::queue_capacity`]), the client
    /// was at its in-flight quota, a blocking submit's wait deadline expired
    /// before space appeared, or a low-priority submission was shed under
    /// saturation.
    ///
    /// **Transient** (retry-safe): nothing about the *input* is wrong — the
    /// service is telling the caller to back off and resubmit later. This is
    /// the typed backpressure signal of
    /// [`QrClient::submit`](crate::service::QrClient::submit).
    ///
    /// [`ServiceConfig::queue_capacity`]: crate::service::ServiceConfig::queue_capacity
    QueueFull,
    /// The service was shut down (dropped, or [`QrService::shutdown`] was
    /// called) before this item could run; queued and delayed-for-retry
    /// items are drained with this error rather than left hanging.
    ///
    /// **Deterministic** (never auto-retried by the service — it no longer
    /// exists): the caller may resubmit to a *different* service instance.
    ///
    /// [`QrService::shutdown`]: crate::service::QrService::shutdown
    ServiceShutdown,
}

impl QrError {
    /// Maps a triggered cancel token's cause to the error the affected items
    /// report.
    pub(crate) fn from_cancel(cause: CancelCause) -> QrError {
        match cause {
            CancelCause::Cancelled => QrError::Cancelled,
            CancelCause::DeadlineExceeded => QrError::DeadlineExceeded,
            CancelCause::Stalled => QrError::Stalled,
        }
    }

    /// True for errors where resubmitting the *same* input later can
    /// reasonably succeed — the classification the service's retry layer
    /// and callers' own backoff loops key on (see the
    /// [enum-level docs](QrError#retry-safety)).
    ///
    /// Transient: [`TaskPanicked`](QrError::TaskPanicked),
    /// [`Stalled`](QrError::Stalled), [`QueueFull`](QrError::QueueFull).
    /// Everything else — shape/configuration errors, non-finite inputs,
    /// cancellation, deadlines, shutdown — is deterministic and must not be
    /// blindly retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            QrError::TaskPanicked { .. } | QrError::Stalled | QrError::QueueFull
        )
    }
}

impl std::fmt::Display for QrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrError::WideMatrix { m, n } => write!(
                f,
                "tiled QR requires a tall or square matrix (m ≥ n), got {m} × {n}"
            ),
            QrError::ZeroTileSize => write!(f, "tile size must be at least 1"),
            QrError::ZeroThreads => write!(f, "a context needs at least one worker thread"),
            QrError::TooManyThreads { requested, max } => {
                write!(f, "{requested} worker threads requested, maximum is {max}")
            }
            QrError::ShapeMismatch { expected, got } => write!(
                f,
                "plan built for a {} × {} matrix, got {} × {}",
                expected.0, expected.1, got.0, got.1
            ),
            QrError::PlanMismatch { expected, got } => write!(
                f,
                "plan built for a {} × {} grid of nb = {} tiles, got {} × {} of nb = {}",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            QrError::RhsLength { expected, got } => write!(
                f,
                "right-hand side length {got} does not match the factored row count {expected}"
            ),
            QrError::TaskPanicked { kind, message } => {
                write!(f, "kernel task {kind:?} panicked: {message}")
            }
            QrError::Cancelled => write!(f, "the factorization was cancelled"),
            QrError::DeadlineExceeded => write!(f, "the factorization deadline expired"),
            QrError::Stalled => write!(
                f,
                "a pool worker stalled past the watchdog bound; the job was cancelled"
            ),
            QrError::ThreadSpawn { details } => {
                write!(f, "failed to spawn a pool worker thread: {details}")
            }
            QrError::NonFiniteInput { row, col } => write!(
                f,
                "input contains a non-finite value at row {row}, column {col}"
            ),
            QrError::QueueFull => write!(
                f,
                "the service admission queue is full (or the submission was shed); \
                 back off and resubmit"
            ),
            QrError::ServiceShutdown => {
                write!(f, "the service was shut down before this item could run")
            }
        }
    }
}

impl std::error::Error for QrError {}

/// The scalar-independent part of a plan: the schedule itself.
///
/// Shared (`Arc`) between the plan, in-flight pool jobs and every
/// [`QrFactorization`]/[`QrReflectors`] produced from it, so the DAG is built
/// once per shape and never copied.
pub(crate) struct PlanCore {
    pub(crate) dag: Arc<TaskDag>,
    pub(crate) succ: SuccessorsCsr,
    /// Initially-ready task indices, in topological order.
    pub(crate) roots: Vec<usize>,
    /// Largest successor batch a single task completion can enable.
    pub(crate) max_out_degree: usize,
    /// Weighted critical-path-to-exit priorities, computed on first use by
    /// the priority scheduler and shared by every subsequent job.
    priorities: OnceLock<Arc<[u64]>>,
}

impl PlanCore {
    fn priorities(&self) -> Arc<[u64]> {
        self.priorities
            .get_or_init(|| self.dag.priorities_with(&self.succ).into())
            .clone()
    }
}

/// A reusable factorization schedule for one problem shape.
///
/// A plan fixes `(m, n, nb, ib, algorithm, family)` and precomputes
/// everything about the factorization that does not depend on the matrix
/// *values*: the elimination list, the task DAG (with CSR successor lists
/// and root set), the critical-path priorities, and a cache of per-worker
/// kernel workspaces sized for `(nb, ib)`. Repeated factorizations of the
/// same shape through [`QrContext::factorize`] then pay only kernel time
/// (plus the unavoidable per-call tile/`T`-factor storage).
///
/// The type parameter is the element type the plan's workspaces serve
/// (`f64` or `Complex64`).
pub struct QrPlan<T: Scalar> {
    m: usize,
    n: usize,
    nb: usize,
    ib: usize,
    algorithm: Algorithm,
    family: KernelFamily,
    p: usize,
    q: usize,
    /// Opt-in pre-submission NaN/Inf scan ([`QrConfig::check_finite`]).
    check_finite: bool,
    pub(crate) core: Arc<PlanCore>,
    /// Checkout cache of kernel workspaces: taken at job start, returned at
    /// job end, grown on demand up to the largest worker count seen.
    ws_cache: Mutex<Vec<Workspace<T>>>,
    /// Largest single checkout so far — the retention bound of `ws_cache`.
    /// Without it, concurrent `factorize` bursts (each building `threads`
    /// fresh workspaces against a momentarily-empty cache) would ratchet the
    /// cache up without limit; with it, surplus returns are dropped.
    ws_high_water: AtomicUsize,
    /// Recycled `ib × nb` `T`-factor buffers, returned by
    /// [`QrPlan::recycle`] / [`QrPlan::recycle_reflectors`] — or by simply
    /// *dropping* a result handle, which recycles through a weak
    /// back-reference — and drawn (zeroed in place) by the next
    /// factorization. Shared (`Arc`) so handles can outlive the plan without
    /// keeping its DAG alive just for the buffer return.
    t_pool: Arc<TPool<T>>,
}

/// The plan's shared pool of recycled `ib × nb` `T`-factor buffers.
///
/// Extracted behind an `Arc` so result handles ([`QrFactorization`] /
/// [`QrReflectors`]) can hold a `Weak` back-reference and return their
/// buffers automatically on drop — service clients who simply drop results
/// get the same allocation-free steady state as callers of the explicit
/// [`QrPlan::recycle`] path, and a handle dropped after its plan costs
/// nothing (the upgrade fails). Buffers of a foreign shape are dropped, and
/// the pool retains at most the widest checkout ever made, so recycling can
/// never ratchet memory up.
pub(crate) struct TPool<T: Scalar> {
    ib: usize,
    nb: usize,
    bufs: Mutex<Vec<Matrix<T>>>,
    /// Largest number of buffers a single call has checked out
    /// (`2 · p · q` per matrix in the batch) — the retention bound, same
    /// rationale as `ws_high_water`.
    high_water: AtomicUsize,
}

impl<T: Scalar> TPool<T> {
    fn new(ib: usize, nb: usize) -> Self {
        TPool {
            ib,
            nb,
            bufs: Mutex::new(Vec::new()),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Returns buffers to the pool, keeping only plan-shaped ones and at
    /// most the high-water count.
    pub(crate) fn recycle(&self, bufs: impl Iterator<Item = Option<Matrix<T>>>) {
        let cap = self.high_water.load(Ordering::Relaxed);
        let mut pool = self.bufs.lock();
        for b in bufs.flatten() {
            if pool.len() >= cap {
                break;
            }
            if b.shape() == (self.ib, self.nb) {
                pool.push(b);
            }
        }
    }

    /// Records a checkout of `need` buffers and takes up to that many out of
    /// the pool (newest first) under a short lock.
    fn take(&self, need: usize) -> Vec<Matrix<T>> {
        self.high_water.fetch_max(need, Ordering::Relaxed);
        let mut pool = self.bufs.lock();
        let keep = pool.len().saturating_sub(need);
        pool.split_off(keep)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.bufs.lock().len()
    }
}

impl<T: Scalar> std::fmt::Debug for QrPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrPlan")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("tile_size", &self.nb)
            .field("inner_block", &self.ib)
            .field("algorithm", &self.algorithm)
            .field("family", &self.family)
            .field("grid", &(self.p, self.q))
            .field("tasks", &self.core.dag.len())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> QrPlan<T> {
    /// Builds the plan for factorizing `m × n` matrices with the shape
    /// parameters of `config` (`tile_size`, `inner_block`, `algorithm`,
    /// `family` — the `threads`/`scheduler` fields belong to the
    /// [`QrContext`] and are ignored here).
    pub fn new(m: usize, n: usize, config: QrConfig) -> Result<Self, QrError> {
        if config.tile_size == 0 {
            return Err(QrError::ZeroTileSize);
        }
        if m < n {
            return Err(QrError::WideMatrix { m, n });
        }
        let nb = config.tile_size;
        let ib = config.effective_inner_block();
        // Degenerate empty matrices pad to one tile, exactly like
        // `TiledMatrix::from_dense_padded`.
        let p = m.div_ceil(nb).max(1);
        let q = n.div_ceil(nb).max(1);
        let list = elimination_list_for(config.algorithm, p, q);
        let dag = TaskDag::build(&list, config.family);
        let succ = dag.successors_csr();
        let roots = crate::executor::initial_roots(&dag);
        let max_out_degree = succ.max_out_degree();
        Ok(QrPlan {
            m,
            n,
            nb,
            ib,
            algorithm: config.algorithm,
            family: config.family,
            p,
            q,
            check_finite: config.check_finite,
            core: Arc::new(PlanCore {
                dag: Arc::new(dag),
                succ,
                roots,
                max_out_degree,
                priorities: OnceLock::new(),
            }),
            ws_cache: Mutex::new(Vec::new()),
            ws_high_water: AtomicUsize::new(0),
            t_pool: Arc::new(TPool::new(ib, nb)),
        })
    }

    /// Row count the plan factorizes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Column count the plan factorizes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile size `nb`.
    pub fn tile_size(&self) -> usize {
        self.nb
    }

    /// Inner blocking factor `ib` the kernels will run with.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// Reduction tree the schedule was generated from.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Kernel family (TT or TS) of the schedule.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Tile rows `p` of the padded grid.
    pub fn tile_rows(&self) -> usize {
        self.p
    }

    /// Tile columns `q` of the padded grid.
    pub fn tile_cols(&self) -> usize {
        self.q
    }

    /// Number of kernel tasks one factorization executes.
    pub fn task_count(&self) -> usize {
        self.core.dag.len()
    }

    /// Takes `count` workspaces out of the cache, building any that are
    /// missing; the caller returns them through
    /// [`QrPlan::restore_workspaces`] when the job is done.
    fn checkout_workspaces(&self, count: usize) -> Vec<Workspace<T>> {
        self.ws_high_water.fetch_max(count, Ordering::Relaxed);
        let mut cache = self.ws_cache.lock();
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match cache.pop() {
                Some(ws) => out.push(ws),
                None => out.push(Workspace::with_inner_block(self.nb, self.ib)),
            }
        }
        out
    }

    /// Returns checked-out workspaces to the cache for the next job,
    /// retaining at most one workspace per worker of the widest checkout
    /// ever made (surplus built during concurrent bursts is dropped).
    fn restore_workspaces(&self, ws: impl IntoIterator<Item = Workspace<T>>) {
        let cap = self.ws_high_water.load(Ordering::Relaxed);
        let mut cache = self.ws_cache.lock();
        cache.extend(ws);
        cache.truncate(cap);
    }

    /// A weak back-reference to the plan's `T`-buffer pool, embedded in
    /// every result handle so dropping the handle recycles automatically.
    pub(crate) fn t_recycler(&self) -> std::sync::Weak<TPool<T>> {
        Arc::downgrade(&self.t_pool)
    }

    /// The opt-in pre-submission finiteness scan, for callers that hold the
    /// dense input themselves (the service layer applies it at dispatch
    /// time): the first non-finite entry when the plan was built with
    /// [`QrConfig::check_finite`](crate::driver::QrConfig::check_finite),
    /// `None` otherwise.
    pub(crate) fn non_finite_in(&self, a: &Matrix<T>) -> Option<(usize, usize)> {
        self.check_finite
            .then(|| find_non_finite_dense(a))
            .flatten()
    }
}

impl<T: Scalar<Real = f64>> QrPlan<T> {
    /// Builds one [`FactorizationState`] per tiled matrix, drawing the
    /// `T`-factor buffers (2 · p · q of `ib × nb` per matrix) from the
    /// plan's recycle pool where available — the fresh-allocation fallback
    /// and the recycled path are bitwise identical because recycled buffers
    /// are zeroed in place before reuse.
    fn build_states(&self, tiled: Vec<TiledMatrix<T>>) -> Vec<FactorizationState<T>> {
        let need = 2 * self.p * self.q * tiled.len();
        // Take the recycled buffers out under a short lock; state
        // construction — tile-mutex wrapping, buffer zeroing and any
        // fresh-allocation fallback — runs lock-free, so concurrent
        // factorizations sharing one plan do not serialize here.
        let mut recycled: Vec<Matrix<T>> = self.t_pool.take(need);
        tiled
            .into_iter()
            .map(|t| {
                FactorizationState::with_t_supplier(t, self.ib, &mut |r, c| match recycled.pop() {
                    Some(mut m) => {
                        debug_assert_eq!(
                            m.shape(),
                            (r, c),
                            "T pool holds only plan-shaped buffers"
                        );
                        m.as_mut_slice().fill(T::ZERO);
                        m
                    }
                    None => Matrix::zeros(r, c),
                })
            })
            .collect()
    }

    /// [`QrPlan::build_states`] for a single matrix — the streaming path
    /// builds copies one at a time because each item of a mixed group draws
    /// from its own plan's pool.
    fn build_state(&self, tiled: TiledMatrix<T>) -> FactorizationState<T> {
        self.build_states(vec![tiled])
            .pop()
            .expect("one matrix in, one state out")
    }

    /// Returns a consumed factorization's `T`-factor buffers to the plan's
    /// recycle pool, making the next [`QrContext::factorize`] /
    /// [`QrContext::factorize_batch`] call of this plan allocation-free for
    /// `T` storage — the last per-call allocation of the hot path. Buffers
    /// whose shape does not match the plan's `(ib, nb)` (a factorization
    /// from a differently-blocked plan) are silently dropped, and the pool
    /// retains at most the widest checkout ever made, so recycling can never
    /// ratchet memory up.
    pub fn recycle(&self, f: QrFactorization<T>) {
        let (t_geqrt, t_elim) = f.into_t_parts();
        self.t_pool.recycle(t_geqrt.into_iter().chain(t_elim));
    }

    /// [`QrPlan::recycle`] for the in-place path: returns a
    /// [`QrReflectors`] handle's `T` buffers to the pool. The steady-state
    /// batch loop — refill tiles, [`QrContext::factorize_batch_into`], use
    /// the reflectors, `recycle_reflectors` — keeps a constant per-call
    /// allocation *count*, with nothing allocated per tile, task or `T`
    /// factor (see the [module docs](self)).
    pub fn recycle_reflectors(&self, r: QrReflectors<T>) {
        let (t_geqrt, t_elim) = r.into_t_parts();
        self.t_pool.recycle(t_geqrt.into_iter().chain(t_elim));
    }
}

/// Column-major scan for the first non-finite entry of a dense matrix
/// (the [`QrConfig::check_finite`] pre-submission check).
fn find_non_finite_dense<T: Scalar>(a: &Matrix<T>) -> Option<(usize, usize)> {
    let (m, n) = a.shape();
    for col in 0..n {
        for row in 0..m {
            if !a.get(row, col).is_finite() {
                return Some((row, col));
            }
        }
    }
    None
}

/// [`find_non_finite_dense`] for caller-owned tile storage: scans the whole
/// padded grid (global coordinates), since a non-finite value anywhere in
/// the buffer — padding included — would poison the factorization.
fn find_non_finite_tiled<T: Scalar>(t: &TiledMatrix<T>) -> Option<(usize, usize)> {
    let rows = t.tile_rows() * t.tile_size();
    let cols = t.tile_cols() * t.tile_size();
    for col in 0..cols {
        for row in 0..rows {
            if !t.get(row, col).is_finite() {
                return Some((row, col));
            }
        }
    }
    None
}

/// Per-batch fault bookkeeping: one slot per batch copy, fed by
/// [`drive_worker`]'s containment mode through the [`FaultSink`] trait.
///
/// A recorded panic poisons exactly one copy: its remaining tasks are
/// skipped (retired without executing) while sibling copies run to
/// completion. After the job drains, [`ItemTracker::verdict`] turns the
/// per-copy state into the item's `Result`.
struct ItemTracker {
    /// Per-copy DAG, for sizing the retire target and mapping a panicking
    /// local task id to its [`TaskKind`]. Same-plan groups hold clones of
    /// one `Arc`; heterogeneous fused groups hold each item's own DAG.
    dags: Vec<Arc<TaskDag>>,
    /// Fast path: no copy has failed yet (one relaxed load per task).
    any_failed: AtomicBool,
    /// Per-copy failure flag, checked before executing each task.
    failed: Vec<AtomicBool>,
    /// First error recorded per copy.
    errors: Vec<Mutex<Option<QrError>>>,
    /// Tasks retired (executed or skipped) per copy; a copy with a full
    /// count and no recorded error completed successfully.
    done: Vec<AtomicUsize>,
}

impl ItemTracker {
    fn new(dag: Arc<TaskDag>, copies: usize) -> Self {
        ItemTracker::per_copy(vec![dag; copies])
    }

    /// One DAG per copy — the heterogeneous fused-group constructor.
    fn per_copy(dags: Vec<Arc<TaskDag>>) -> Self {
        let copies = dags.len();
        ItemTracker {
            dags,
            any_failed: AtomicBool::new(false),
            failed: (0..copies).map(|_| AtomicBool::new(false)).collect(),
            errors: (0..copies).map(|_| Mutex::new(None)).collect(),
            done: (0..copies).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Task count of `copy`'s DAG — its retire target.
    fn tasks_of(&self, copy: usize) -> usize {
        self.dags[copy].len()
    }

    /// The item result of `copy` once the job has drained: a recorded fault
    /// wins; an incomplete retire count means the job was cancelled out from
    /// under the copy (`cause` says why); otherwise the copy succeeded.
    fn verdict(&self, copy: usize, cause: Option<CancelCause>) -> Option<QrError> {
        if let Some(err) = self.errors[copy].lock().take() {
            return Some(err);
        }
        if !self.is_complete(copy) {
            return Some(QrError::from_cancel(
                cause.unwrap_or(CancelCause::Cancelled),
            ));
        }
        None
    }

    /// Retires one task of `copy` and returns the new retire count — the
    /// seam the streaming job uses to detect the *final* retire of a copy
    /// and fire its per-item completion hook on the worker thread.
    fn retire(&self, copy: usize) -> usize {
        self.done[copy].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Takes the first error recorded for `copy`, if any.
    fn take_error(&self, copy: usize) -> Option<QrError> {
        self.errors[copy].lock().take()
    }

    /// True once every task of `copy` has retired (executed or skipped).
    fn is_complete(&self, copy: usize) -> bool {
        self.done[copy].load(Ordering::Acquire) >= self.dags[copy].len()
    }
}

impl FaultSink for ItemTracker {
    fn copy_failed(&self, copy: usize) -> bool {
        // The relaxed fast-path load is safe: a stale `false` at worst runs
        // one more task of an already-failed copy against garbage tile data,
        // which only that copy's (already discarded) output can observe.
        // Tasks released *after* the panic was recorded see the flag through
        // the dependency counter's release/acquire chain.
        self.any_failed.load(Ordering::Relaxed) && self.failed[copy].load(Ordering::Acquire)
    }

    fn record_panic(&self, copy: usize, local: usize, payload: &(dyn std::any::Any + Send)) {
        let mut slot = self.errors[copy].lock();
        if slot.is_none() {
            *slot = Some(QrError::TaskPanicked {
                kind: self.dags[copy].tasks[local].kind,
                message: payload_message(payload).to_string(),
            });
        }
        self.failed[copy].store(true, Ordering::Release);
        self.any_failed.store(true, Ordering::Release);
    }

    fn task_retired(&self, copy: usize) {
        self.retire(copy);
    }
}

/// Unwind guard of the in-place batch path: while a fused job runs, the
/// caller's conforming slots hold `0 × 0` placeholder grids (their tiles
/// were moved into the job). If the job panics — a kernel bug — this guard
/// puts a plan-shaped **zero** grid back into every *taken* slot still
/// holding its placeholder, so the caller keeps buffers of the documented
/// shape (the values were being overwritten anyway; a
/// `catch_unwind`-and-retry loop refills them via
/// [`TiledMatrix::fill_from_dense_padded`]). Rejected slots are tracked
/// explicitly (`taken[i] == false`), never restored — a caller-supplied
/// buffer that happens to *be* `0 × 0` stays untouched, as documented. On
/// the normal return path every placeholder was already replaced by its
/// factored tiles, and the drop is a no-op.
struct RestorePlaceholders<'a, T: Scalar> {
    tiles: &'a mut [TiledMatrix<T>],
    /// `taken[i]`: slot `i` conformed and its tiles were moved into the job.
    taken: Vec<bool>,
    p: usize,
    q: usize,
    nb: usize,
}

impl<T: Scalar> Drop for RestorePlaceholders<'_, T> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        for (t, &taken) in self.tiles.iter_mut().zip(&self.taken) {
            if taken && t.tile_rows() == 0 && t.tile_cols() == 0 {
                *t = TiledMatrix::zeros(self.p, self.q, self.nb);
            }
        }
    }
}

/// One pool job factoring a *batch* of `k ≥ 1` independent matrices of one
/// plan's shape as a single fused DAG: `k` factorization states, the shared
/// schedule, this job's scheduler instance and `k · n` dependency counters,
/// and one workspace slot per worker. Global task id `g` maps to task
/// `g % n` of the plan's DAG executed against matrix `g / n` — the
/// single-matrix path is simply `k = 1`, where the mapping is the identity.
struct BatchJob<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> {
    states: Vec<FactorizationState<T>>,
    core: Arc<PlanCore>,
    sched: S,
    remaining: Vec<AtomicUsize>,
    completed: AtomicUsize,
    aborted: AtomicBool,
    ws_slots: Vec<Mutex<Option<Workspace<T>>>>,
    /// Per-copy fault bookkeeping; the workers run in containment mode, so a
    /// kernel panic poisons one copy instead of the whole job.
    tracker: ItemTracker,
    /// This job's cancel token: the submitter's wait loop funnels user
    /// cancellation, the deadline and the watchdog into it; workers check it
    /// between tasks.
    cancel: CancelToken,
}

impl<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> Job for BatchJob<T, S> {
    fn run(&self, w: usize, heartbeat: &AtomicUsize) {
        let n = self.core.dag.len();
        let mut slot = self.ws_slots[w].lock();
        let ws = slot.as_mut().expect("one workspace is staged per worker");
        // Uniform map: the historical `g → (g / n, g % n)` arithmetic,
        // allocation-free (no offset table is materialized).
        let map = ItemMap::uniform(n, self.states.len());
        let ctl = DriveCtl {
            num_tasks: self.remaining.len(),
            map: &map,
            succ: GroupSucc::Shared(&self.core.succ),
            remaining: &self.remaining,
            completed: &self.completed,
            aborted: &self.aborted,
            max_out_degree: self.core.max_out_degree,
            cancel: Some(&self.cancel),
            faults: Some(&self.tracker),
        };
        drive_worker(&ctl, &self.sched, w, Some(heartbeat), &mut |g| {
            #[cfg(feature = "fault-injection")]
            crate::fault::check(g / n, g % n);
            self.states[g / n].run_ws(self.core.dag.tasks[g % n].kind, ws)
        });
    }
}

/// Per-item completion callback of the streaming path
/// ([`QrContext::factorize_stream`]): called exactly once per submitted
/// matrix, **from a worker thread**, the moment that matrix's last task
/// retires — not when the whole fused job drains. The service layer
/// ([`crate::service`]) implements it to resolve tickets while sibling
/// matrices are still factoring.
///
/// Implementations must be cheap and must not block on the pool (they run
/// inside the job); resolving a oneshot cell and pushing to a retry list
/// are the intended scale of work.
pub(crate) trait ItemSink<T: Scalar>: Send + Sync {
    /// Delivers item `index`'s outcome: the finished factorization, or the
    /// typed per-item error (contained panic, cancellation cause, …).
    fn item_done(&self, index: usize, outcome: Result<QrFactorization<T>, QrError>);
}

/// One item of a streaming group ([`QrContext::factorize_stream`]): the
/// item's own plan, its input, and its fault-injection probe id. Items of
/// one call may reference *different* plans — the job fuses them through
/// the offset map.
pub(crate) struct StreamEntry<T: Scalar> {
    pub(crate) plan: Arc<QrPlan<T>>,
    pub(crate) input: StreamInput<T>,
    /// Fault-probe id for this item: the service remaps retry attempts to
    /// fresh probe coordinates so a seeded fault schedule can distinguish
    /// attempt 0 from attempt 1 of the same submission. Without the feature
    /// the id is carried but unread.
    pub(crate) probe: usize,
}

/// How a streaming item's matrix enters the job.
pub(crate) enum StreamInput<T: Scalar> {
    /// Already tiled (direct internal callers and tests).
    #[cfg_attr(not(test), allow(dead_code))]
    Tiled(TiledMatrix<T>),
    /// Dense: the dispatcher allocates only a zeroed tile grid, and the
    /// first worker that touches the copy performs the dense → tiled copy
    /// ([`FactorizationState::fill_tiles_from_dense`]) — the admission path
    /// never pays the `O(m·n)` tiling cost.
    Dense(Arc<Matrix<T>>),
}

/// Per-copy shape/schedule metadata of a streaming job, drawn from that
/// item's own plan — the seam that lets one fused job span plans: the DAG
/// to execute, the shape to stamp on the result, and the plan pool the
/// copy's `T` buffers recycle back to.
struct StreamItemMeta<T: Scalar> {
    core: Arc<PlanCore>,
    m: usize,
    n: usize,
    nb: usize,
    ib: usize,
    recycler: std::sync::Weak<TPool<T>>,
}

/// Lazy-tiling gate of one streaming copy ([`StreamInput::Dense`]): the
/// first worker to touch the copy claims the gate, copies the dense input
/// into the copy's (zeroed) tiles, and publishes readiness; concurrent
/// same-copy workers spin briefly until the tiles are in place. Pre-tiled
/// copies are born ready.
struct TileGate<T: Scalar> {
    /// The dense input, taken by the claiming worker; `None` once tiled
    /// (and for pre-tiled inputs).
    dense: Mutex<Option<Arc<Matrix<T>>>>,
    claim: ClaimFlag,
    ready: AtomicBool,
}

impl<T: Scalar> TileGate<T> {
    /// A gate for a copy whose tiles already hold the input.
    fn ready() -> Self {
        TileGate {
            dense: Mutex::new(None),
            claim: ClaimFlag::new(),
            ready: AtomicBool::new(true),
        }
    }

    /// A gate holding a dense input awaiting worker-side tiling.
    fn pending(dense: Arc<Matrix<T>>) -> Self {
        TileGate {
            dense: Mutex::new(Some(dense)),
            claim: ClaimFlag::new(),
            ready: AtomicBool::new(false),
        }
    }
}

/// The streaming variant of [`BatchJob`]: same fused-DAG execution, but each
/// copy's state lives behind `Mutex<Option<Arc<…>>>` so the copy that
/// finishes *first* can be dismantled into a [`QrFactorization`] and handed
/// to the [`ItemSink`] while the rest of the job is still running — and each
/// copy carries its **own** plan metadata, so one job can fuse items of
/// different shapes, tile sizes and elimination trees.
///
/// Global task id `g` resolves through the job's [`ItemMap`] to
/// `(copy, local)`; same-plan groups use the uniform map (bit-for-bit the
/// historical cyclic arithmetic) while mixed groups binary-search the
/// prefix-sum offsets. Successor release and priority ranking follow the
/// same per-copy contract ([`GroupSucc`],
/// [`WorkStealingPriority::new_shared_offsets`]).
///
/// Completion detection rides the [`FaultSink::task_retired`] hook:
/// [`ItemTracker::retire`] returns the copy's new retire count, and the
/// worker that performs the final retire takes the state out of its slot.
/// Every task's short-lived `Arc` clone is dropped *before* that task's
/// retire increment, and the increments form a release/acquire chain on the
/// copy's counter, so at the final retire all other clones are gone and
/// `Arc::try_unwrap` succeeds; a put-back plus the job-end sweep in
/// [`QrContext::run_stream_job`] covers the theoretical failure without
/// losing the item.
struct StreamJob<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> {
    /// One slot per copy: `Some(state)` while the copy is in flight, taken
    /// by the finishing worker (or the job-end sweep). The lock is held only
    /// to clone the `Arc` out (per task) or take it (once) — never across a
    /// kernel.
    states: Vec<Mutex<Option<Arc<FactorizationState<T>>>>>,
    /// Exactly-once guard per copy: claimed by whichever path (worker hook
    /// or job-end sweep) delivers the item to the sink.
    resolved: Vec<ClaimFlag>,
    /// Fault-probe ids, one per copy (see [`StreamEntry::probe`]).
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    probes: Vec<usize>,
    /// Per-copy lazy-tiling gates.
    gates: Vec<TileGate<T>>,
    /// Per-copy plan metadata.
    metas: Vec<StreamItemMeta<T>>,
    /// `g → (copy, local)` geometry of the fused group.
    map: ItemMap,
    /// True when every item references the same plan: the successor CSR is
    /// shared and the per-worker CSR-reference collection is skipped.
    homogeneous: bool,
    /// Largest successor batch any copy's task can enable.
    max_out_degree: usize,
    sched: S,
    remaining: Vec<AtomicUsize>,
    completed: AtomicUsize,
    aborted: AtomicBool,
    ws_slots: Vec<Mutex<Option<Workspace<T>>>>,
    tracker: ItemTracker,
    cancel: CancelToken,
    sink: Arc<dyn ItemSink<T>>,
}

impl<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> StreamJob<T, S> {
    /// Dismantles a fully-retired copy and delivers its outcome to the sink.
    /// Called by the worker that performed the copy's final retire; a copy
    /// whose state was already taken (or whose `Arc` is still briefly
    /// shared — see the put-back) is left for the job-end sweep.
    fn finish_copy(&self, copy: usize) {
        let taken = self.states[copy].lock().take();
        let Some(arc) = taken else { return };
        let meta = &self.metas[copy];
        match Arc::try_unwrap(arc) {
            Ok(state) => {
                let (tiles, t_geqrt, t_elim) = state.into_parts();
                let outcome = match self.tracker.take_error(copy) {
                    Some(e) => {
                        // A failed copy's T buffers go straight back to the
                        // item's own plan; its tiles hold partial garbage
                        // and are dropped.
                        if let Some(pool) = meta.recycler.upgrade() {
                            pool.recycle(t_geqrt.into_iter().chain(t_elim));
                        }
                        Err(e)
                    }
                    None => Ok(QrFactorization::from_parts(
                        meta.m,
                        meta.n,
                        meta.nb,
                        meta.ib,
                        tiles,
                        t_geqrt,
                        t_elim,
                        Arc::clone(&meta.core.dag),
                        meta.recycler.clone(),
                    )),
                };
                if self.resolved[copy].claim() {
                    self.sink.item_done(copy, outcome);
                }
            }
            Err(arc) => {
                // Another worker still holds a task-scope clone (possible
                // only if an Arc count decrement is not yet visible, which
                // the retire chain rules out in practice — keep the item
                // safe regardless): put the state back for the job-end
                // sweep.
                *self.states[copy].lock() = Some(arc);
            }
        }
    }

    /// Makes sure `copy`'s tiles hold its input before a kernel touches
    /// them: the claiming worker tiles the dense input in place, everyone
    /// else spins until published. The spin escapes only when the copy is
    /// poisoned (the claimer panicked mid-tiling and can never publish) —
    /// a poisoned copy's outcome is an error, so the kernel result that
    /// follows is discarded either way.
    fn ensure_tiled(&self, copy: usize, state: &FactorizationState<T>) {
        let gate = &self.gates[copy];
        if gate.ready.load(Ordering::Acquire) {
            return;
        }
        if gate.claim.claim() {
            if let Some(dense) = gate.dense.lock().take() {
                state.fill_tiles_from_dense(&dense);
            }
            gate.ready.store(true, Ordering::Release);
        } else {
            let mut backoff = Backoff::new();
            while !gate.ready.load(Ordering::Acquire) {
                if self.tracker.copy_failed(copy) {
                    return;
                }
                backoff.snooze();
            }
        }
    }
}

impl<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> FaultSink for StreamJob<T, S> {
    fn copy_failed(&self, copy: usize) -> bool {
        self.tracker.copy_failed(copy)
    }

    fn record_panic(&self, copy: usize, local: usize, payload: &(dyn std::any::Any + Send)) {
        self.tracker.record_panic(copy, local, payload);
    }

    fn task_retired(&self, copy: usize) {
        if self.tracker.retire(copy) == self.tracker.tasks_of(copy) {
            self.finish_copy(copy);
        }
    }
}

impl<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> Job for StreamJob<T, S> {
    fn run(&self, w: usize, heartbeat: &AtomicUsize) {
        let mut slot = self.ws_slots[w].lock();
        let ws = slot.as_mut().expect("one workspace is staged per worker");
        // Heterogeneous groups collect the per-copy CSR references once per
        // worker run — O(group), bounded by the service's max_group —
        // instead of materializing any fused adjacency; same-plan groups
        // share the single CSR, allocation-free.
        let succ_refs: Vec<&SuccessorsCsr>;
        let succ = if self.homogeneous {
            GroupSucc::Shared(&self.metas[0].core.succ)
        } else {
            succ_refs = self.metas.iter().map(|m| &m.core.succ).collect();
            GroupSucc::PerCopy(&succ_refs)
        };
        let ctl = DriveCtl {
            num_tasks: self.remaining.len(),
            map: &self.map,
            succ,
            remaining: &self.remaining,
            completed: &self.completed,
            aborted: &self.aborted,
            max_out_degree: self.max_out_degree,
            cancel: Some(&self.cancel),
            faults: Some(self),
        };
        drive_worker(&ctl, &self.sched, w, Some(heartbeat), &mut |g| {
            let (copy, local) = self.map.locate(g);
            let meta = &self.metas[copy];
            #[cfg(feature = "fault-injection")]
            crate::fault::check(self.probes[copy], local);
            // Clone the Arc out under a brief lock so same-copy tasks on
            // other workers never serialize on the slot; the clone drops
            // before this task's retire increment (see `StreamJob` docs).
            let state = self.states[copy].lock().as_ref().map(Arc::clone);
            if let Some(state) = state {
                // Mixed-ib groups: the workspace buffers are sized from the
                // group's largest nb and serve every smaller tile; only the
                // panel width switches, allocation-free
                // ([`Workspace::set_inner_block`]).
                if ws.ib() != meta.ib {
                    ws.set_inner_block(meta.ib);
                }
                self.ensure_tiled(copy, &state);
                state.run_ws(meta.core.dag.tasks[local].kind, ws);
            }
        });
    }
}

/// A long-lived factorization runtime: a persistent worker pool plus a
/// scheduling policy.
///
/// Build one context per service (or per thread-count/scheduler choice) and
/// reuse it for every factorization; combine with a [`QrPlan`] per problem
/// shape so repeated factorizations skip planning entirely. With
/// `threads == 1` no pool is spawned and every factorization runs on the
/// calling thread in topological order (the bitwise reference order).
///
/// The context is `Sync`; concurrent `factorize` calls from several threads
/// are safe but serialized — the pool runs one job at a time.
pub struct QrContext {
    threads: usize,
    scheduler: SchedulerKind,
    pool: Option<WorkerPool>,
    /// The sticky user cancellation token handed out by
    /// [`QrContext::cancel_handle`]. Internal causes (deadline, watchdog)
    /// never touch it — each job gets its own token they funnel into.
    cancel: CancelToken,
    /// Stall bound of the pool watchdog, if enabled.
    watchdog: Option<Duration>,
}

impl std::fmt::Debug for QrContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrContext")
            .field("threads", &self.threads)
            .field("scheduler", &self.scheduler)
            .field("watchdog", &self.watchdog)
            .finish_non_exhaustive()
    }
}

impl QrContext {
    /// Builds a context with `threads` persistent workers and the default
    /// scheduler ([`SchedulerKind::WorkStealing`]).
    pub fn new(threads: usize) -> Result<Self, QrError> {
        QrContext::with_scheduler(threads, SchedulerKind::default())
    }

    /// Validates a worker-thread count; factored out of the constructor so
    /// the bounds (including the [`MAX_THREADS`] boundary itself) are
    /// testable without actually spawning a pool.
    pub(crate) fn validate_threads(threads: usize) -> Result<(), QrError> {
        if threads == 0 {
            return Err(QrError::ZeroThreads);
        }
        if threads > MAX_THREADS {
            return Err(QrError::TooManyThreads {
                requested: threads,
                max: MAX_THREADS,
            });
        }
        Ok(())
    }

    /// Builds a context with `threads` persistent workers and an explicit
    /// ready-task scheduling policy.
    pub fn with_scheduler(threads: usize, scheduler: SchedulerKind) -> Result<Self, QrError> {
        QrContext::validate_threads(threads)?;
        let pool = if threads > 1 {
            Some(WorkerPool::new(threads).map_err(|e| QrError::ThreadSpawn {
                details: e.to_string(),
            })?)
        } else {
            None
        };
        Ok(QrContext {
            threads,
            scheduler,
            pool,
            cancel: CancelToken::new(),
            watchdog: None,
        })
    }

    /// Arms the pool watchdog: if no worker retires a task for longer than
    /// `bound` while a job is in flight, the job is cancelled and its
    /// unfinished items report [`QrError::Stalled`].
    ///
    /// The watchdog is cooperative — it reliably recovers runs whose workers
    /// are *idling* without progress (the shape of a lost-task bug) and runs
    /// whose stalled task eventually returns. A task wedged in an infinite
    /// loop keeps its OS thread (safe Rust cannot kill it); the watchdog then
    /// still stops the *other* workers from burning CPU, but the call
    /// returns only once the wedged task does. Pick a bound comfortably
    /// above the longest single kernel task, not the whole factorization.
    pub fn with_watchdog(mut self, bound: Duration) -> Self {
        self.watchdog = Some(bound);
        self
    }

    /// A cloneable cancellation handle shared by every factorization this
    /// context runs. After [`CancelToken::cancel`], in-flight calls wind
    /// down at the next between-task check (unfinished items report
    /// [`QrError::Cancelled`]; already-finished batch items still return
    /// `Ok`) and *future* calls fail fast — cancellation is sticky until
    /// [`CancelToken::reset`] revives the context.
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Number of worker threads (1 = sequential, no pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ready-task scheduling policy of the pool.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Factorizes a dense matrix of the plan's shape, returning the full
    /// [`QrFactorization`] handle (extract `R`, apply `Q`/`Qᴴ`, …).
    ///
    /// The matrix values are copied into fresh tile storage; use
    /// [`QrContext::factorize_into`] to skip that copy on a hot path.
    pub fn factorize<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        a: &Matrix<T>,
    ) -> Result<QrFactorization<T>, QrError> {
        self.factorize_inner(plan, a, None)
    }

    /// [`QrContext::factorize`] with a relative deadline: if the
    /// factorization has not finished `timeout` after the call was made, it
    /// is cancelled and returns [`QrError::DeadlineExceeded`]. The deadline
    /// is checked between kernel tasks, so the overrun is bounded by one
    /// task plus the submitter's poll interval.
    pub fn factorize_with_deadline<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        a: &Matrix<T>,
        timeout: Duration,
    ) -> Result<QrFactorization<T>, QrError> {
        self.factorize_inner(plan, a, Some(Instant::now() + timeout))
    }

    fn factorize_inner<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        a: &Matrix<T>,
        deadline: Option<Instant>,
    ) -> Result<QrFactorization<T>, QrError> {
        if a.shape() != (plan.m, plan.n) {
            return Err(QrError::ShapeMismatch {
                expected: (plan.m, plan.n),
                got: a.shape(),
            });
        }
        if plan.check_finite {
            if let Some((row, col)) = find_non_finite_dense(a) {
                return Err(QrError::NonFiniteInput { row, col });
            }
        }
        let tiled = TiledMatrix::from_dense_padded(a, plan.nb);
        let ((tiles, t_geqrt, t_elim), err) = self.run_plan(plan, tiled, deadline);
        match err {
            Some(e) => Err(e),
            None => Ok(QrFactorization::from_parts(
                plan.m,
                plan.n,
                plan.nb,
                plan.ib,
                tiles,
                t_geqrt,
                t_elim,
                Arc::clone(&plan.core.dag),
                plan.t_recycler(),
            )),
        }
    }

    /// Factorizes caller-owned tile storage **in place** — the tiles are
    /// overwritten with `R` and the Householder vectors, and only the `T`
    /// factors come back, as a [`QrReflectors`] handle. Nothing about the
    /// matrix values is copied, so a caller that keeps refilling one
    /// [`TiledMatrix`] buffer (e.g. via
    /// [`TiledMatrix::fill_from_dense_padded`]) factors a stream of
    /// matrices with zero per-call tile allocation.
    ///
    /// The grid must match the plan: `p × q` tiles of order `nb` (the shape
    /// [`TiledMatrix::from_dense_padded`] produces for an `m × n` matrix).
    ///
    /// If a kernel panics (a bug, not a recoverable condition), the panic is
    /// propagated; the tile buffer keeps its plan-shaped grid but its
    /// numeric contents are lost (reset to zeros), so a
    /// `catch_unwind`-and-retry caller can refill the same buffer and carry
    /// on — the pool itself survives the panic.
    pub fn factorize_into<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut TiledMatrix<T>,
    ) -> Result<QrReflectors<T>, QrError> {
        self.batch_into_inner(plan, std::slice::from_mut(tiles), None)
            .pop()
            .expect("one buffer in, one result out")
    }

    /// [`QrContext::factorize_into`] with a relative deadline; see
    /// [`QrContext::factorize_with_deadline`]. On
    /// [`QrError::DeadlineExceeded`] the buffer keeps its plan-shaped grid
    /// but may hold a partially factored matrix — refill it before retrying.
    pub fn factorize_into_with_deadline<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut TiledMatrix<T>,
        timeout: Duration,
    ) -> Result<QrReflectors<T>, QrError> {
        self.batch_into_inner(
            plan,
            std::slice::from_mut(tiles),
            Some(Instant::now() + timeout),
        )
        .pop()
        .expect("one buffer in, one result out")
    }

    /// Factorizes a batch of `k` independent matrices of the plan's shape as
    /// **one fused pool job**, returning one [`Result`] per matrix in input
    /// order.
    ///
    /// All `k` schedules are submitted together — task ids are the plan's
    /// DAG tiled `k` times, sharing its CSR successor lists and critical-path
    /// priorities — so small problems pay a single pool wake-up instead of
    /// `k`, and the work-stealing deques balance load *across* matrices: a
    /// worker idling at the tail of one matrix's DAG steals ready tasks from
    /// another's. Each matrix's result is **bitwise identical** to a
    /// standalone [`QrContext::factorize`] of that matrix (the fused DAG has
    /// no cross-matrix edges, and the per-tile kernel order within each
    /// matrix is unchanged).
    ///
    /// Failures are isolated per item: a matrix whose shape does not match
    /// the plan gets `Err(`[`QrError::ShapeMismatch`]`)` in its slot while
    /// the conforming matrices still factor. An empty batch returns an empty
    /// vector without touching the pool.
    ///
    /// Pair with [`QrPlan::recycle`] to return each consumed result's
    /// `T`-factor storage for the next call.
    pub fn factorize_batch<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        mats: &[Matrix<T>],
    ) -> Vec<Result<QrFactorization<T>, QrError>> {
        self.batch_inner(plan, mats, None)
    }

    /// [`QrContext::factorize_batch`] with a relative deadline shared by the
    /// whole batch. Items that finished before the deadline fired still
    /// return `Ok` (partial results); the rest report
    /// [`QrError::DeadlineExceeded`].
    pub fn factorize_batch_with_deadline<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        mats: &[Matrix<T>],
        timeout: Duration,
    ) -> Vec<Result<QrFactorization<T>, QrError>> {
        self.batch_inner(plan, mats, Some(Instant::now() + timeout))
    }

    fn batch_inner<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        mats: &[Matrix<T>],
        deadline: Option<Instant>,
    ) -> Vec<Result<QrFactorization<T>, QrError>> {
        let mut slots: Vec<Result<(), QrError>> = Vec::with_capacity(mats.len());
        let mut tiled = Vec::with_capacity(mats.len());
        for a in mats {
            if a.shape() != (plan.m, plan.n) {
                slots.push(Err(QrError::ShapeMismatch {
                    expected: (plan.m, plan.n),
                    got: a.shape(),
                }));
            } else if let Some((row, col)) = plan
                .check_finite
                .then(|| find_non_finite_dense(a))
                .flatten()
            {
                slots.push(Err(QrError::NonFiniteInput { row, col }));
            } else {
                slots.push(Ok(()));
                tiled.push(TiledMatrix::from_dense_padded(a, plan.nb));
            }
        }
        let mut items = self.run_batch(plan, tiled, deadline).into_iter();
        slots
            .into_iter()
            .map(|slot| {
                slot.and_then(|()| {
                    let ((tiles, t_geqrt, t_elim), err) =
                        items.next().expect("one result per conforming matrix");
                    match err {
                        Some(e) => Err(e),
                        None => Ok(QrFactorization::from_parts(
                            plan.m,
                            plan.n,
                            plan.nb,
                            plan.ib,
                            tiles,
                            t_geqrt,
                            t_elim,
                            Arc::clone(&plan.core.dag),
                            plan.t_recycler(),
                        )),
                    }
                })
            })
            .collect()
    }

    /// The in-place counterpart of [`QrContext::factorize_batch`]: factors a
    /// batch of caller-owned tile buffers **in place** as one fused pool
    /// job, returning one [`QrReflectors`] handle per buffer in input order.
    ///
    /// Each buffer must match the plan's grid (`p × q` tiles of order `nb`);
    /// a non-conforming buffer gets `Err(`[`QrError::PlanMismatch`]`)` in
    /// its slot and is left untouched while the conforming buffers still
    /// factor. Combined with [`TiledMatrix::fill_from_dense_padded`] to
    /// refill the buffers and [`QrPlan::recycle_reflectors`] to return the
    /// `T` storage, a steady-state batch loop performs only a constant,
    /// small number of bookkeeping allocations per call — none per tile,
    /// per task or per `T` factor (see the [module docs](self)).
    ///
    /// If a kernel panics mid-batch, the panic is propagated; every
    /// conforming buffer keeps its plan-shaped grid (contents reset to
    /// zeros), so a `catch_unwind`-and-retry caller can refill the same
    /// buffers — the pool itself survives the panic.
    pub fn factorize_batch_into<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut [TiledMatrix<T>],
    ) -> Vec<Result<QrReflectors<T>, QrError>> {
        self.batch_into_inner(plan, tiles, None)
    }

    /// [`QrContext::factorize_batch_into`] with a relative deadline shared
    /// by the whole batch; see
    /// [`QrContext::factorize_batch_with_deadline`]. Buffers of items that
    /// report an error keep their plan-shaped grid but may hold partially
    /// factored values — refill them before retrying.
    pub fn factorize_batch_into_with_deadline<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut [TiledMatrix<T>],
        timeout: Duration,
    ) -> Vec<Result<QrReflectors<T>, QrError>> {
        self.batch_into_inner(plan, tiles, Some(Instant::now() + timeout))
    }

    fn batch_into_inner<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut [TiledMatrix<T>],
        deadline: Option<Instant>,
    ) -> Vec<Result<QrReflectors<T>, QrError>> {
        let mut slots: Vec<Result<(), QrError>> = Vec::with_capacity(tiles.len());
        let mut owned = Vec::with_capacity(tiles.len());
        for t in tiles.iter_mut() {
            let got = (t.tile_rows(), t.tile_cols(), t.tile_size());
            if got != (plan.p, plan.q, plan.nb) {
                slots.push(Err(QrError::PlanMismatch {
                    expected: (plan.p, plan.q, plan.nb),
                    got,
                }));
            } else if let Some((row, col)) = plan
                .check_finite
                .then(|| find_non_finite_tiled(t))
                .flatten()
            {
                // Rejected before submission: the buffer is left untouched.
                slots.push(Err(QrError::NonFiniteInput { row, col }));
            } else {
                slots.push(Ok(()));
                owned.push(std::mem::replace(
                    t,
                    TiledMatrix::from_tiles(Vec::new(), 0, 0, plan.nb),
                ));
            }
        }
        // If the fused job panics *uncontained* (a bug in the runtime
        // itself — kernel panics are caught per task), the unwind must not
        // leave the caller's conforming slots holding the 0 × 0
        // placeholders: the guard puts plan-shaped zero grids back so a
        // recover-and-retry caller can refill the same buffers.
        let guard = RestorePlaceholders {
            taken: slots.iter().map(Result::is_ok).collect(),
            tiles,
            p: plan.p,
            q: plan.q,
            nb: plan.nb,
        };
        let mut items = self.run_batch(plan, owned, deadline).into_iter();
        let mut out = Vec::with_capacity(guard.tiles.len());
        for (slot, t) in slots.into_iter().zip(guard.tiles.iter_mut()) {
            out.push(slot.and_then(|()| {
                let ((factored, t_geqrt, t_elim), err) =
                    items.next().expect("one result per conforming buffer");
                // The caller gets their buffer back in every outcome: the
                // factored tiles on success, the partially overwritten tiles
                // on a contained fault or cancellation (grid intact, values
                // to be refilled), and the bitwise-untouched tiles when the
                // run was rejected before any kernel executed.
                *t = factored;
                match err {
                    Some(e) => Err(e),
                    None => Ok(QrReflectors {
                        m: plan.m,
                        n: plan.n,
                        nb: plan.nb,
                        ib: plan.ib,
                        p: plan.p,
                        q: plan.q,
                        dag: Arc::clone(&plan.core.dag),
                        t_geqrt,
                        t_elim,
                        recycler: plan.t_recycler(),
                    }),
                }
            }));
        }
        out
    }

    /// Executes the plan's DAG against `tiled`, sequentially or on the pool,
    /// and returns the factored parts plus the item's fault, if any.
    #[allow(clippy::type_complexity)]
    fn run_plan<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiled: TiledMatrix<T>,
        deadline: Option<Instant>,
    ) -> (
        (
            TiledMatrix<T>,
            Vec<Option<Matrix<T>>>,
            Vec<Option<Matrix<T>>>,
        ),
        Option<QrError>,
    ) {
        self.run_batch(plan, vec![tiled], deadline)
            .pop()
            .expect("one matrix in, one result out")
    }

    /// Executes the plan's DAG against every matrix of the batch — the
    /// single shared engine behind [`QrContext::factorize`],
    /// [`QrContext::factorize_into`] and both batch entry points. With a
    /// pool, the whole batch is one fused job (one wake-up); without one,
    /// the matrices run back to back on the calling thread in topological
    /// order (the bitwise reference order).
    #[allow(clippy::type_complexity)]
    fn run_batch<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiled: Vec<TiledMatrix<T>>,
        deadline: Option<Instant>,
    ) -> Vec<(
        (
            TiledMatrix<T>,
            Vec<Option<Matrix<T>>>,
            Vec<Option<Matrix<T>>>,
        ),
        Option<QrError>,
    )> {
        if tiled.is_empty() {
            return Vec::new();
        }
        // Fail fast before any state is built or kernel runs: a sticky
        // cancellation or an already-expired deadline rejects every item
        // with its tile buffers bitwise untouched.
        let pre = if self.cancel.is_cancelled() {
            Some(QrError::Cancelled)
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            Some(QrError::DeadlineExceeded)
        } else {
            None
        };
        if let Some(e) = pre {
            return tiled
                .into_iter()
                .map(|t| ((t, Vec::new(), Vec::new()), Some(e.clone())))
                .collect();
        }
        let states = plan.build_states(tiled);
        match &self.pool {
            None => self.run_batch_sequential(plan, states, deadline),
            Some(pool) => {
                let copies = states.len();
                let total = plan.core.dag.len() * copies;
                let threads = pool.threads();
                match self.scheduler {
                    SchedulerKind::LockedFifo => {
                        self.run_batch_job(plan, pool, states, LockedFifo::new(total), deadline)
                    }
                    SchedulerKind::WorkStealing => self.run_batch_job(
                        plan,
                        pool,
                        states,
                        WorkStealing::new(total, threads),
                        deadline,
                    ),
                    SchedulerKind::WorkStealingPriority => self.run_batch_job(
                        plan,
                        pool,
                        states,
                        WorkStealingPriority::new_shared_cyclic(
                            plan.core.priorities(),
                            threads,
                            copies,
                        ),
                        deadline,
                    ),
                }
            }
        }
    }

    /// The `threads == 1` engine: every copy runs on the calling thread in
    /// topological order (the bitwise reference order), with the same
    /// robustness semantics as the pool path — per-task cancellation and
    /// deadline checks, and per-task panic containment that fails only the
    /// current copy while later copies still run.
    #[allow(clippy::type_complexity)]
    fn run_batch_sequential<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        states: Vec<FactorizationState<T>>,
        deadline: Option<Instant>,
    ) -> Vec<(
        (
            TiledMatrix<T>,
            Vec<Option<Matrix<T>>>,
            Vec<Option<Matrix<T>>>,
        ),
        Option<QrError>,
    )> {
        let mut ws = plan.checkout_workspaces(1);
        // A cancellation or expired deadline stops the whole run: the copy
        // it interrupted and every later copy report the cause.
        let mut stop: Option<QrError> = None;
        let mut errors: Vec<Option<QrError>> = Vec::with_capacity(states.len());
        for (copy, state) in states.iter().enumerate() {
            if stop.is_some() {
                errors.push(stop.clone());
                continue;
            }
            let mut item_err: Option<QrError> = None;
            for (local, task) in plan.core.dag.tasks.iter().enumerate() {
                if self.cancel.is_cancelled() {
                    stop = Some(QrError::Cancelled);
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    stop = Some(QrError::DeadlineExceeded);
                    break;
                }
                // `copy`/`local` address the fault-injection probe; without
                // the feature they are deliberately unused.
                let _ = (copy, local);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-injection")]
                    crate::fault::check(copy, local);
                    state.run_ws(task.kind, &mut ws[0])
                }));
                if let Err(payload) = result {
                    item_err = Some(QrError::TaskPanicked {
                        kind: task.kind,
                        message: payload_message(&*payload).to_string(),
                    });
                    break;
                }
            }
            errors.push(item_err.or_else(|| stop.clone()));
        }
        plan.restore_workspaces(ws);
        states
            .into_iter()
            .zip(errors)
            .map(|(s, e)| (s.into_parts(), e))
            .collect()
    }

    /// Packages a batch of factorizations as one fused pool job, runs it
    /// under the submitter-side controls (cancellation, deadline, watchdog),
    /// and recovers the states, workspaces and per-item verdicts (the job is
    /// uniquely owned again once every worker signalled completion).
    #[allow(clippy::type_complexity)]
    fn run_batch_job<T: Scalar<Real = f64>, S: Scheduler + Send + Sync + 'static>(
        &self,
        plan: &QrPlan<T>,
        pool: &WorkerPool,
        states: Vec<FactorizationState<T>>,
        sched: S,
        deadline: Option<Instant>,
    ) -> Vec<(
        (
            TiledMatrix<T>,
            Vec<Option<Matrix<T>>>,
            Vec<Option<Matrix<T>>>,
        ),
        Option<QrError>,
    )> {
        let threads = pool.threads();
        let n = plan.core.dag.len();
        let copies = states.len();
        // Roots of every copy of the DAG, offset into that copy's id range.
        let mut roots = Vec::with_capacity(plan.core.roots.len() * copies);
        for copy in 0..copies {
            roots.extend(plan.core.roots.iter().map(|&r| copy * n + r));
        }
        sched.seed(&mut roots);
        let mut remaining = Vec::with_capacity(n * copies);
        for _ in 0..copies {
            remaining.extend(
                plan.core
                    .dag
                    .tasks
                    .iter()
                    .map(|t| AtomicUsize::new(t.deps.len())),
            );
        }
        let job = Arc::new(BatchJob {
            states,
            core: Arc::clone(&plan.core),
            sched,
            remaining,
            completed: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            ws_slots: plan
                .checkout_workspaces(threads)
                .into_iter()
                .map(|ws| Mutex::new(Some(ws)))
                .collect(),
            tracker: ItemTracker::new(Arc::clone(&plan.core.dag), copies),
            // A fresh per-job token: the submitter's wait loop forwards user
            // cancellation into it and triggers it on deadline/stall, so
            // internal causes never poison the context's sticky handle.
            cancel: CancelToken::new(),
        });
        pool.run_controlled(
            Arc::clone(&job) as Arc<dyn Job>,
            Some(RunCtl {
                job_cancel: job.cancel.clone(),
                user_cancel: self.cancel.clone(),
                deadline,
                stall_bound: self.watchdog,
            }),
        );
        // `run_controlled` returns only after every worker dropped its
        // reference to the job (and the pool's own slot was cleared), so the
        // Arc is uniquely owned again.
        let job = Arc::into_inner(job)
            .unwrap_or_else(|| panic!("batch job still shared after the pool ran it"));
        plan.restore_workspaces(job.ws_slots.into_iter().filter_map(Mutex::into_inner));
        let cause = job.cancel.cause();
        let tracker = job.tracker;
        job.states
            .into_iter()
            .enumerate()
            .map(|(copy, s)| (s.into_parts(), tracker.verdict(copy, cause)))
            .collect()
    }

    /// The streaming engine behind the service layer ([`crate::service`]):
    /// factors `items` as one fused job like [`QrContext::run_batch`], but
    /// delivers each item's outcome through `sink` **the moment its last
    /// task retires** instead of returning a joined vector — and each item
    /// carries its **own** plan, so one fused job may span different shapes,
    /// tile sizes and elimination trees.
    ///
    /// Id mapping: global task id `g` resolves to `(copy, local)` through an
    /// [`ItemMap`]. When every item references the same plan (`Arc::ptr_eq`)
    /// the map is uniform — `g → (g / n, g % n)`, bit-for-bit the historical
    /// cyclic arithmetic, with the shared successor CSR and the cyclic
    /// priority ranking — so same-plan groups execute identically to the
    /// pre-offset runtime. Mixed groups use prefix-sum offsets, per-copy
    /// successor indexing, per-copy priority tables
    /// ([`WorkStealingPriority::new_shared_offsets`]) and a workspace
    /// checkout sized to the **max** tile order across the group's plans.
    ///
    /// Exactly-once guarantee: `sink.item_done` is called exactly once per
    /// element of `items`, in every outcome — success, contained panic,
    /// cancellation/stall abort, and pre-run rejection.
    pub(crate) fn factorize_stream<T: Scalar<Real = f64>>(
        &self,
        items: Vec<StreamEntry<T>>,
        sink: &Arc<dyn ItemSink<T>>,
    ) {
        if items.is_empty() {
            return;
        }
        // Fail fast before any state is built: a sticky cancellation
        // resolves every item without running a kernel.
        if self.cancel.is_cancelled() {
            for copy in 0..items.len() {
                sink.item_done(copy, Err(QrError::Cancelled));
            }
            return;
        }
        match &self.pool {
            None => self.run_stream_sequential(items, sink),
            Some(pool) => {
                let homogeneous = items[1..]
                    .iter()
                    .all(|e| Arc::ptr_eq(&e.plan, &items[0].plan));
                let map = if homogeneous {
                    ItemMap::uniform(items[0].plan.core.dag.len(), items.len())
                } else {
                    let counts: Vec<usize> = items.iter().map(|e| e.plan.core.dag.len()).collect();
                    ItemMap::from_counts(&counts)
                };
                let total = map.total();
                let threads = pool.threads();
                match self.scheduler {
                    SchedulerKind::LockedFifo => self.run_stream_job(
                        items,
                        map,
                        homogeneous,
                        pool,
                        LockedFifo::new(total),
                        sink,
                    ),
                    SchedulerKind::WorkStealing => self.run_stream_job(
                        items,
                        map,
                        homogeneous,
                        pool,
                        WorkStealing::new(total, threads),
                        sink,
                    ),
                    SchedulerKind::WorkStealingPriority => {
                        let sched = if homogeneous {
                            WorkStealingPriority::new_shared_cyclic(
                                items[0].plan.core.priorities(),
                                threads,
                                items.len(),
                            )
                        } else {
                            WorkStealingPriority::new_shared_offsets(
                                items.iter().map(|e| e.plan.core.priorities()).collect(),
                                threads,
                            )
                        };
                        self.run_stream_job(items, map, homogeneous, pool, sched, sink)
                    }
                }
            }
        }
    }

    /// [`QrContext::run_stream_sequential`]: the `threads == 1` streaming
    /// engine. Each copy runs to completion on the calling thread (bitwise
    /// reference order, against its own plan) and its outcome is delivered
    /// to the sink before the next copy starts — the same per-item streaming
    /// contract as the pool path, just with trivial ordering.
    fn run_stream_sequential<T: Scalar<Real = f64>>(
        &self,
        items: Vec<StreamEntry<T>>,
        sink: &Arc<dyn ItemSink<T>>,
    ) {
        // A cancellation stops the whole run: the copy it interrupted and
        // every later copy resolve with the cause.
        let mut stop: Option<QrError> = None;
        for (copy, entry) in items.into_iter().enumerate() {
            let StreamEntry { plan, input, probe } = entry;
            if stop.is_some() {
                sink.item_done(copy, Err(stop.clone().unwrap()));
                continue;
            }
            let tiled = match input {
                StreamInput::Tiled(t) => t,
                StreamInput::Dense(a) => TiledMatrix::from_dense_padded(&a, plan.nb),
            };
            let state = plan.build_state(tiled);
            let mut ws = plan.checkout_workspaces(1);
            let mut item_err: Option<QrError> = None;
            for (local, task) in plan.core.dag.tasks.iter().enumerate() {
                if self.cancel.is_cancelled() {
                    stop = Some(QrError::Cancelled);
                    break;
                }
                // `probe`/`local` address the fault-injection probe;
                // without the feature they are deliberately unused.
                let _ = (probe, local);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-injection")]
                    crate::fault::check(probe, local);
                    state.run_ws(task.kind, &mut ws[0])
                }));
                if let Err(payload) = result {
                    item_err = Some(QrError::TaskPanicked {
                        kind: task.kind,
                        message: payload_message(&*payload).to_string(),
                    });
                    break;
                }
            }
            plan.restore_workspaces(ws);
            let (tiles, t_geqrt, t_elim) = state.into_parts();
            let outcome = match item_err.or_else(|| stop.clone()) {
                Some(e) => {
                    // A failed copy's T buffers go straight back to its own
                    // plan; its partially factored tiles are dropped.
                    plan.t_pool.recycle(t_geqrt.into_iter().chain(t_elim));
                    Err(e)
                }
                None => Ok(QrFactorization::from_parts(
                    plan.m,
                    plan.n,
                    plan.nb,
                    plan.ib,
                    tiles,
                    t_geqrt,
                    t_elim,
                    Arc::clone(&plan.core.dag),
                    plan.t_recycler(),
                )),
            };
            sink.item_done(copy, outcome);
        }
    }

    /// Packages the streaming batch as one fused pool job ([`StreamJob`]),
    /// runs it under the submitter-side controls, then sweeps up every copy
    /// the worker-side completion hook did not resolve — copies skipped by a
    /// cancellation/stall abort (and the theoretical `Arc::try_unwrap`
    /// put-back) — so the exactly-once sink contract holds in every outcome.
    ///
    /// Heterogeneous mechanics: each copy's roots/dependency counts come
    /// from its own plan (offset by [`ItemMap::base`]); the per-worker
    /// workspaces are checked out from the plan with the **largest** tile
    /// order (every buffer is sized from `nb` alone, so they serve every
    /// smaller tile — tasks switch the panel width in place via
    /// [`Workspace::set_inner_block`]) and restored to that plan with its
    /// own `ib` re-established; dense inputs are tiled lazily by the first
    /// worker to touch each copy, keeping the dispatcher thread free.
    fn run_stream_job<T: Scalar<Real = f64>, S: Scheduler + Send + Sync + 'static>(
        &self,
        items: Vec<StreamEntry<T>>,
        map: ItemMap,
        homogeneous: bool,
        pool: &WorkerPool,
        sched: S,
        sink: &Arc<dyn ItemSink<T>>,
    ) {
        let threads = pool.threads();
        let copies = items.len();
        let mut roots = Vec::new();
        for (copy, entry) in items.iter().enumerate() {
            let base = map.base(copy);
            roots.extend(entry.plan.core.roots.iter().map(|&r| base + r));
        }
        sched.seed(&mut roots);
        let mut remaining = Vec::with_capacity(map.total());
        for entry in &items {
            remaining.extend(
                entry
                    .plan
                    .core
                    .dag
                    .tasks
                    .iter()
                    .map(|t| AtomicUsize::new(t.deps.len())),
            );
        }
        // The group's workspaces come from the largest-nb plan: its buffers
        // serve every smaller tile order in the group.
        let ws_owner = Arc::clone(
            &items
                .iter()
                .max_by_key(|e| e.plan.nb)
                .expect("group is non-empty")
                .plan,
        );
        let max_out_degree = items
            .iter()
            .map(|e| e.plan.core.max_out_degree)
            .max()
            .unwrap_or(0);
        let mut states = Vec::with_capacity(copies);
        let mut gates = Vec::with_capacity(copies);
        let mut dags = Vec::with_capacity(copies);
        let mut probes = Vec::with_capacity(copies);
        let mut metas = Vec::with_capacity(copies);
        for entry in items {
            let StreamEntry { plan, input, probe } = entry;
            let (state, gate) = match input {
                StreamInput::Tiled(t) => (plan.build_state(t), TileGate::ready()),
                // Dense inputs defer the O(m·n) tiling copy to the first
                // worker that touches the copy: the dispatcher allocates
                // only a zeroed grid here.
                StreamInput::Dense(a) => (
                    plan.build_state(TiledMatrix::zeros(plan.p, plan.q, plan.nb)),
                    TileGate::pending(a),
                ),
            };
            states.push(Mutex::new(Some(Arc::new(state))));
            gates.push(gate);
            dags.push(Arc::clone(&plan.core.dag));
            probes.push(probe);
            metas.push(StreamItemMeta {
                core: Arc::clone(&plan.core),
                m: plan.m,
                n: plan.n,
                nb: plan.nb,
                ib: plan.ib,
                recycler: plan.t_recycler(),
            });
        }
        let job = Arc::new(StreamJob {
            states,
            resolved: (0..copies).map(|_| ClaimFlag::new()).collect(),
            probes,
            gates,
            metas,
            map,
            homogeneous,
            max_out_degree,
            sched,
            remaining,
            completed: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            ws_slots: ws_owner
                .checkout_workspaces(threads)
                .into_iter()
                .map(|ws| Mutex::new(Some(ws)))
                .collect(),
            tracker: ItemTracker::per_copy(dags),
            cancel: CancelToken::new(),
            sink: Arc::clone(sink),
        });
        pool.run_controlled(
            Arc::clone(&job) as Arc<dyn Job>,
            Some(RunCtl {
                job_cancel: job.cancel.clone(),
                user_cancel: self.cancel.clone(),
                // Streaming submissions carry per-item deadlines at
                // admission time (the service layer's job); the run itself
                // is bounded by the stall watchdog and cancellation only.
                deadline: None,
                stall_bound: self.watchdog,
            }),
        );
        let job = Arc::into_inner(job)
            .unwrap_or_else(|| panic!("stream job still shared after the pool ran it"));
        // Restore with the owner plan's own panel width re-established —
        // the last task a workspace served may have switched it.
        ws_owner.restore_workspaces(job.ws_slots.into_iter().filter_map(Mutex::into_inner).map(
            |mut ws| {
                ws.set_inner_block(ws_owner.ib);
                ws
            },
        ));
        let cause = job.cancel.cause();
        for (copy, slot) in job.states.into_iter().enumerate() {
            if !job.resolved[copy].claim() {
                continue; // the worker hook already delivered this copy
            }
            let meta = &job.metas[copy];
            // A recorded fault wins; an incomplete retire count means the
            // job was aborted out from under the copy; a complete count
            // with no error is the put-back case — the copy succeeded.
            let err = job.tracker.take_error(copy).or_else(|| {
                (!job.tracker.is_complete(copy))
                    .then(|| QrError::from_cancel(cause.unwrap_or(CancelCause::Cancelled)))
            });
            match slot.into_inner() {
                Some(arc) => {
                    let state = Arc::try_unwrap(arc).unwrap_or_else(|_| {
                        panic!("stream copy state still shared after the pool drained")
                    });
                    let (tiles, t_geqrt, t_elim) = state.into_parts();
                    let outcome = match err {
                        Some(e) => {
                            if let Some(pool) = meta.recycler.upgrade() {
                                pool.recycle(t_geqrt.into_iter().chain(t_elim));
                            }
                            Err(e)
                        }
                        None => Ok(QrFactorization::from_parts(
                            meta.m,
                            meta.n,
                            meta.nb,
                            meta.ib,
                            tiles,
                            t_geqrt,
                            t_elim,
                            Arc::clone(&meta.core.dag),
                            meta.recycler.clone(),
                        )),
                    };
                    sink.item_done(copy, outcome);
                }
                None => {
                    // Unreachable — an unresolved copy keeps its state —
                    // but the exactly-once contract is kept regardless.
                    sink.item_done(copy, Err(err.unwrap_or(QrError::Stalled)));
                }
            }
        }
    }
}

/// The `T` factors of an in-place factorization ([`QrContext::factorize_into`]).
///
/// The factored tiles stay with the caller; combined with them, this handle
/// replays the block reflectors (`Q`/`Qᴴ` application, `R` extraction) or
/// upgrades into a self-contained [`QrFactorization`] by taking ownership of
/// the tiles.
///
/// Dropping the handle returns its `ib × nb` `T` buffers to the owning
/// plan's recycle pool automatically (via a weak back-reference), so a
/// caller who never calls [`QrPlan::recycle_reflectors`] explicitly still
/// keeps the steady-state loop allocation-free. If the plan is already gone,
/// the buffers are simply freed.
pub struct QrReflectors<T: Scalar> {
    m: usize,
    n: usize,
    nb: usize,
    ib: usize,
    p: usize,
    q: usize,
    dag: Arc<TaskDag>,
    t_geqrt: Vec<Option<Matrix<T>>>,
    t_elim: Vec<Option<Matrix<T>>>,
    recycler: std::sync::Weak<TPool<T>>,
}

impl<T: Scalar> Drop for QrReflectors<T> {
    fn drop(&mut self) {
        if let Some(pool) = self.recycler.upgrade() {
            let t_geqrt = std::mem::take(&mut self.t_geqrt);
            let t_elim = std::mem::take(&mut self.t_elim);
            pool.recycle(t_geqrt.into_iter().chain(t_elim));
        }
    }
}

impl<T: Scalar> std::fmt::Debug for QrReflectors<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrReflectors")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("tile_size", &self.nb)
            .field("inner_block", &self.ib)
            .field("grid", &(self.p, self.q))
            .finish_non_exhaustive()
    }
}

impl<T: Scalar<Real = f64>> QrReflectors<T> {
    /// Original (unpadded) row count of the factored matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Original (unpadded) column count of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner blocking factor the `T` factors are stored with.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// Panics unless `tiles` has the grid this factorization was computed
    /// on — the `tiles` handed back by [`QrContext::factorize_into`].
    fn check_tiles(&self, tiles: &TiledMatrix<T>) {
        assert!(
            (tiles.tile_rows(), tiles.tile_cols(), tiles.tile_size()) == (self.p, self.q, self.nb),
            "tile grid does not match the factorization ({}×{} of nb={})",
            self.p,
            self.q,
            self.nb
        );
    }

    /// The upper-triangular factor `R` (`n × n`), read out of the factored
    /// tiles.
    pub fn r(&self, tiles: &TiledMatrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        let full = tiles.to_dense();
        let mut r = full.sub_matrix(0, 0, self.n, self.n);
        r.zero_below_diagonal();
        r
    }

    /// Applies `Qᴴ` to a dense matrix with `m` rows, replaying the block
    /// reflectors stored in `tiles`.
    pub fn apply_qh(&self, tiles: &TiledMatrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        replay_q(
            tiles,
            &self.t_geqrt,
            &self.t_elim,
            &self.dag,
            self.ib,
            self.m,
            b,
            Trans::ConjTrans,
        )
    }

    /// Applies `Q` to a dense matrix with `m` rows.
    pub fn apply_q(&self, tiles: &TiledMatrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        replay_q(
            tiles,
            &self.t_geqrt,
            &self.t_elim,
            &self.dag,
            self.ib,
            self.m,
            b,
            Trans::NoTrans,
        )
    }

    /// Upgrades into a self-contained [`QrFactorization`] by taking
    /// ownership of the factored tiles. The auto-recycle back-reference
    /// moves with the `T` buffers, so dropping the factorization still
    /// returns them to the plan.
    pub fn into_factorization(mut self, tiles: TiledMatrix<T>) -> QrFactorization<T> {
        self.check_tiles(&tiles);
        // `mem::take` rather than destructuring: the handle has a `Drop`
        // impl (the auto-recycle path), which forbids moving fields out.
        // The emptied vectors make that drop a no-op.
        let t_geqrt = std::mem::take(&mut self.t_geqrt);
        let t_elim = std::mem::take(&mut self.t_elim);
        QrFactorization::from_parts(
            self.m,
            self.n,
            self.nb,
            self.ib,
            tiles,
            t_geqrt,
            t_elim,
            Arc::clone(&self.dag),
            std::mem::take(&mut self.recycler),
        )
    }

    /// Moves the `T` buffers out for explicit recycling
    /// ([`QrPlan::recycle_reflectors`]), disarming the drop-recycle path.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_t_parts(mut self) -> (Vec<Option<Matrix<T>>>, Vec<Option<Matrix<T>>>) {
        (
            std::mem::take(&mut self.t_geqrt),
            std::mem::take(&mut self.t_elim),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::generate::random_matrix;

    #[test]
    fn plan_rejects_bad_shapes() {
        assert_eq!(
            QrPlan::<f64>::new(4, 8, QrConfig::new(2)).err(),
            Some(QrError::WideMatrix { m: 4, n: 8 })
        );
        assert_eq!(
            QrPlan::<f64>::new(8, 4, QrConfig::new(0)).err(),
            Some(QrError::ZeroTileSize)
        );
    }

    #[test]
    fn context_rejects_bad_thread_counts() {
        assert_eq!(QrContext::new(0).err(), Some(QrError::ZeroThreads));
        assert_eq!(
            QrContext::new(MAX_THREADS + 1).err(),
            Some(QrError::TooManyThreads {
                requested: MAX_THREADS + 1,
                max: MAX_THREADS
            })
        );
        assert!(QrContext::new(1).unwrap().pool.is_none());
        // The boundary itself is accepted; validated without spawning 1024
        // parked workers.
        assert_eq!(QrContext::validate_threads(MAX_THREADS), Ok(()));
        assert_eq!(
            QrContext::validate_threads(MAX_THREADS + 1),
            Err(QrError::TooManyThreads {
                requested: MAX_THREADS + 1,
                max: MAX_THREADS
            })
        );
        assert_eq!(QrContext::validate_threads(0), Err(QrError::ZeroThreads));
    }

    #[test]
    fn factorize_checks_the_matrix_shape() {
        let ctx = QrContext::new(1).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(12, 8, QrConfig::new(4)).unwrap();
        let wrong: Matrix<f64> = random_matrix(12, 4, 1);
        assert_eq!(
            ctx.factorize(&plan, &wrong).err(),
            Some(QrError::ShapeMismatch {
                expected: (12, 8),
                got: (12, 4)
            })
        );
    }

    #[test]
    fn factorize_into_checks_the_tile_grid() {
        let ctx = QrContext::new(1).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(12, 8, QrConfig::new(4)).unwrap();
        let mut tiles = TiledMatrix::<f64>::zeros(2, 2, 4);
        assert_eq!(
            ctx.factorize_into(&plan, &mut tiles).err(),
            Some(QrError::PlanMismatch {
                expected: (3, 2, 4),
                got: (2, 2, 4)
            })
        );
    }

    #[test]
    fn repeated_factorizations_reuse_the_plan() {
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(24, 16, QrConfig::new(4)).unwrap();
        let a: Matrix<f64> = random_matrix(24, 16, 3);
        let first = ctx.factorize(&plan, &a).unwrap();
        for _ in 0..3 {
            let again = ctx.factorize(&plan, &a).unwrap();
            assert_eq!(again.r(), first.r(), "plan reuse must be deterministic");
        }
        assert!(first.residual(&a) < 1e-11);
    }

    #[test]
    fn in_place_matches_the_copying_path_bitwise() {
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(20, 12, QrConfig::new(4)).unwrap();
        let a: Matrix<f64> = random_matrix(20, 12, 5);
        let f = ctx.factorize(&plan, &a).unwrap();
        let mut tiles = TiledMatrix::from_dense_padded(&a, 4);
        let refl = ctx.factorize_into(&plan, &mut tiles).unwrap();
        assert_eq!(&tiles, f.factored_tiles());
        assert_eq!(refl.r(&tiles), f.r());
        let b: Matrix<f64> = random_matrix(20, 2, 6);
        assert_eq!(refl.apply_qh(&tiles, &b), f.apply_qh(&b));
        let g = refl.into_factorization(tiles);
        assert_eq!(g.r(), f.r());
    }

    #[test]
    fn workspace_cache_is_bounded_by_the_widest_checkout() {
        // Simulate a concurrent burst: three checkouts in flight at once
        // against a cold cache. The cache must retain at most one workspace
        // per worker of the widest checkout, not the sum of the burst.
        let plan: QrPlan<f64> = QrPlan::new(16, 8, QrConfig::new(4)).unwrap();
        let a = plan.checkout_workspaces(2);
        let b = plan.checkout_workspaces(2);
        let c = plan.checkout_workspaces(2);
        plan.restore_workspaces(a);
        plan.restore_workspaces(b);
        plan.restore_workspaces(c);
        assert!(plan.ws_cache.lock().len() <= 2);
        // A wider context later raises the retention bound.
        let d = plan.checkout_workspaces(3);
        plan.restore_workspaces(d);
        assert!(plan.ws_cache.lock().len() <= 3);
    }

    #[test]
    fn error_messages_are_displayable() {
        let e = QrError::WideMatrix { m: 2, n: 5 };
        assert!(e.to_string().contains("m ≥ n"));
        let e = QrError::TooManyThreads {
            requested: 9999,
            max: MAX_THREADS,
        };
        assert!(e.to_string().contains("9999"));
        let e = QrError::TaskPanicked {
            kind: TaskKind::Geqrt { row: 0, col: 2 },
            message: "boom".into(),
        };
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("boom"));
        assert!(QrError::Cancelled.to_string().contains("cancelled"));
        assert!(QrError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(QrError::Stalled.to_string().contains("stalled"));
        let e = QrError::ThreadSpawn {
            details: "out of threads".into(),
        };
        assert!(e.to_string().contains("out of threads"));
        let e = QrError::NonFiniteInput { row: 3, col: 1 };
        assert!(e.to_string().contains("row 3"));
    }

    #[test]
    fn batch_matches_per_call_factorizations_bitwise() {
        let (m, n, nb) = (24usize, 16usize, 4usize);
        let mats: Vec<Matrix<f64>> = (0..5).map(|i| random_matrix(m, n, 300 + i)).collect();
        for kind in SchedulerKind::ALL {
            for threads in [1usize, 3] {
                let ctx = QrContext::with_scheduler(threads, kind).unwrap();
                let plan: QrPlan<f64> = QrPlan::new(m, n, QrConfig::new(nb)).unwrap();
                let batch = ctx.factorize_batch(&plan, &mats);
                assert_eq!(batch.len(), mats.len());
                for (a, item) in mats.iter().zip(batch) {
                    let f = item.expect("conforming matrix must factor");
                    let solo = ctx.factorize(&plan, a).unwrap();
                    assert_eq!(
                        f.factored_tiles(),
                        solo.factored_tiles(),
                        "batch and per-call results diverge ({} threads, {})",
                        threads,
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_into_matches_the_copying_batch_bitwise() {
        let (m, n, nb) = (20usize, 12usize, 4usize);
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(m, n, QrConfig::new(nb)).unwrap();
        let mats: Vec<Matrix<f64>> = (0..4).map(|i| random_matrix(m, n, 400 + i)).collect();
        let copied = ctx.factorize_batch(&plan, &mats);
        let mut tiles: Vec<TiledMatrix<f64>> = mats
            .iter()
            .map(|a| TiledMatrix::from_dense_padded(a, nb))
            .collect();
        let refls = ctx.factorize_batch_into(&plan, &mut tiles);
        for ((f, refl), t) in copied.into_iter().zip(refls).zip(&tiles) {
            let f = f.unwrap();
            let refl = refl.unwrap();
            assert_eq!(t, f.factored_tiles());
            assert_eq!(refl.r(t), f.r());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(12, 8, QrConfig::new(4)).unwrap();
        assert!(ctx.factorize_batch(&plan, &[]).is_empty());
        assert!(ctx.factorize_batch_into(&plan, &mut []).is_empty());
    }

    #[test]
    fn t_factor_recycling_is_bitwise_invisible_and_bounded() {
        let (m, n, nb) = (16usize, 8usize, 4usize);
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(m, n, QrConfig::new(nb)).unwrap();
        let a: Matrix<f64> = random_matrix(m, n, 500);
        let reference = ctx.factorize(&plan, &a).unwrap();
        let r_ref = reference.r();
        let b: Matrix<f64> = random_matrix(m, 2, 501);
        let qhb_ref = reference.apply_qh(&b);
        // Recycle and refactor several times: results must not change by a
        // bit, and the pool must stay bounded by the widest checkout
        // (2 · p · q buffers for the single-matrix calls here).
        plan.recycle(reference);
        let per_call = 2 * plan.tile_rows() * plan.tile_cols();
        for _ in 0..3 {
            assert!(plan.t_pool.len() <= per_call);
            let f = ctx.factorize(&plan, &a).unwrap();
            assert_eq!(f.r(), r_ref, "recycled T buffers changed the result");
            assert_eq!(f.apply_qh(&b), qhb_ref, "recycled T buffers broke Q replay");
            plan.recycle(f);
        }
        // Foreign-shaped buffers are dropped, not pooled: recycling through
        // a differently-blocked plan of the same grid must not grow its pool
        // with mismatched matrices.
        let plan_ib1: QrPlan<f64> =
            QrPlan::new(m, n, QrConfig::new(nb).with_inner_block(1)).unwrap();
        let f = ctx.factorize(&plan, &a).unwrap();
        plan_ib1.recycle(f);
        assert_eq!(plan_ib1.t_pool.len(), 0);
    }

    #[test]
    fn dropping_a_result_recycles_t_buffers_automatically() {
        let (m, n, nb) = (16usize, 8usize, 4usize);
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(m, n, QrConfig::new(nb)).unwrap();
        let a: Matrix<f64> = random_matrix(m, n, 520);
        let per_call = 2 * plan.tile_rows() * plan.tile_cols();

        // Dense path: plain `drop` refills the pool through the weak
        // back-reference, and the next run is bitwise identical whether its
        // T storage was fresh or pool-drawn.
        let reference = ctx.factorize(&plan, &a).unwrap();
        let r_ref = reference.r();
        assert_eq!(plan.t_pool.len(), 0);
        drop(reference);
        assert_eq!(plan.t_pool.len(), per_call);
        let again = ctx.factorize(&plan, &a).unwrap();
        assert_eq!(again.r(), r_ref);
        assert_eq!(plan.t_pool.len(), 0, "pool drained by the recycled run");

        // Explicit recycle after the fields were moved out must not
        // double-return: `recycle` consumes via `into_t_parts`, which disarms
        // the drop path.
        plan.recycle(again);
        assert_eq!(plan.t_pool.len(), per_call);

        // In-place path: dropping the reflectors handle recycles too.
        let mut tiles = TiledMatrix::from_dense_padded(&a, nb);
        let refl = ctx.factorize_into(&plan, &mut tiles).unwrap();
        assert_eq!(plan.t_pool.len(), 0);
        drop(refl);
        assert_eq!(plan.t_pool.len(), per_call);

        // `into_factorization` moves the back-reference with the buffers.
        let refl = ctx.factorize_into(&plan, &mut tiles).unwrap();
        let f = refl.into_factorization(tiles);
        assert_eq!(plan.t_pool.len(), 0);
        drop(f);
        assert_eq!(plan.t_pool.len(), per_call);

        // A handle that outlives its plan frees the buffers quietly.
        let f = ctx.factorize(&plan, &a).unwrap();
        drop(plan);
        drop(f);
    }

    #[test]
    fn reflector_recycling_keeps_the_in_place_loop_stable() {
        let (m, n, nb) = (24usize, 12usize, 4usize);
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(m, n, QrConfig::new(nb)).unwrap();
        let a: Matrix<f64> = random_matrix(m, n, 510);
        let oneshot = ctx.factorize(&plan, &a).unwrap();
        let mut tiles = TiledMatrix::from_dense_padded(&a, nb);
        for _ in 0..4 {
            tiles.fill_from_dense_padded(&a);
            let mut batch = vec![std::mem::replace(&mut tiles, TiledMatrix::zeros(6, 3, nb))];
            let refl = ctx
                .factorize_batch_into(&plan, &mut batch)
                .pop()
                .unwrap()
                .unwrap();
            tiles = batch.pop().unwrap();
            assert_eq!(&tiles, oneshot.factored_tiles());
            plan.recycle_reflectors(refl);
        }
    }

    #[test]
    fn in_place_buffers_keep_their_grid_if_the_call_unwinds() {
        // A kernel panic unwinds out of factorize_batch_into after the
        // caller's conforming buffers were swapped for 0 × 0 placeholders.
        // The RestorePlaceholders guard must put plan-shaped grids back
        // (zeroed — the values were being overwritten anyway) and leave
        // non-placeholder slots alone, so a catch_unwind-and-retry loop can
        // refill the same buffers.
        let mut tiles = vec![
            TiledMatrix::<f64>::zeros(3, 2, 4),
            TiledMatrix::<f64>::zeros(1, 1, 4), // rejected slot: untouched
            // A caller-supplied buffer that *is* 0 × 0 (also rejected): the
            // guard must not mistake it for a moved-out placeholder.
            TiledMatrix::<f64>::from_tiles(Vec::new(), 0, 0, 7),
        ];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let guard = RestorePlaceholders {
                taken: vec![true, false, false],
                tiles: &mut tiles,
                p: 3,
                q: 2,
                nb: 4,
            };
            // Simulate the batch having taken the first (conforming) buffer.
            guard.tiles[0] = TiledMatrix::from_tiles(Vec::new(), 0, 0, 4);
            panic!("simulated kernel failure");
        }));
        assert!(err.is_err());
        assert_eq!(tiles[0], TiledMatrix::zeros(3, 2, 4), "grid restored");
        assert_eq!(tiles[1], TiledMatrix::zeros(1, 1, 4), "foreign slot kept");
        assert_eq!(
            tiles[2],
            TiledMatrix::from_tiles(Vec::new(), 0, 0, 7),
            "a caller-owned 0 × 0 buffer is not a placeholder"
        );
        // And a refill on the restored buffer works — the retry pattern.
        tiles[0].fill_from_dense_padded(&random_matrix::<f64>(12, 8, 99));
    }

    #[test]
    fn pool_survives_a_mid_batch_worker_panic() {
        // A worker panicking mid-job is what a kernel bug looks like to the
        // pool: drive the plan's real DAG through the real pool with one
        // poisoned task, then prove the same context still factors real
        // batches bitwise-correctly afterwards.
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(24, 16, QrConfig::new(4)).unwrap();

        struct PoisonJob {
            core: Arc<PlanCore>,
            sched: WorkStealing,
            remaining: Vec<AtomicUsize>,
            completed: AtomicUsize,
            aborted: AtomicBool,
            poison: usize,
        }
        impl Job for PoisonJob {
            fn run(&self, w: usize, heartbeat: &AtomicUsize) {
                let n = self.core.dag.len();
                // Legacy abort mode (`faults: None`): the panic unwinds out
                // of the worker and the pool re-raises it on the submitter.
                let map = ItemMap::uniform(n, 1);
                let ctl = DriveCtl {
                    num_tasks: n,
                    map: &map,
                    succ: GroupSucc::Shared(&self.core.succ),
                    remaining: &self.remaining,
                    completed: &self.completed,
                    aborted: &self.aborted,
                    max_out_degree: self.core.max_out_degree,
                    cancel: None,
                    faults: None,
                };
                drive_worker(&ctl, &self.sched, w, Some(heartbeat), &mut |idx| {
                    if idx == self.poison {
                        panic!("injected mid-batch kernel failure");
                    }
                });
            }
        }

        let core = Arc::clone(&plan.core);
        let sched = WorkStealing::new(core.dag.len(), 2);
        let mut roots = core.roots.clone();
        sched.seed(&mut roots);
        let job = Arc::new(PoisonJob {
            remaining: core
                .dag
                .tasks
                .iter()
                .map(|t| AtomicUsize::new(t.deps.len()))
                .collect(),
            completed: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            poison: core.dag.len() / 2,
            core,
            sched,
        });
        let pool = ctx.pool.as_ref().expect("2-thread context has a pool");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(job as Arc<dyn Job>);
        }));
        assert!(
            result.is_err(),
            "the injected panic must reach the submitter"
        );

        // The context (and its pool) must still serve batches, bitwise equal
        // to the sequential reference.
        let mats: Vec<Matrix<f64>> = (0..3).map(|i| random_matrix(24, 16, 600 + i)).collect();
        let seq = QrContext::new(1).unwrap();
        for (a, item) in mats.iter().zip(ctx.factorize_batch(&plan, &mats)) {
            let f = item.expect("batch after a panic must succeed");
            assert_eq!(
                f.factored_tiles(),
                seq.factorize(&plan, a).unwrap().factored_tiles()
            );
        }
    }

    /// Ordered collection sink for the stream tests: slot `i` receives
    /// item `i`'s outcome exactly once.
    type ItemOutcome = Result<QrFactorization<f64>, QrError>;
    struct CollectSink {
        results: Mutex<Vec<Option<ItemOutcome>>>,
    }

    impl ItemSink<f64> for CollectSink {
        fn item_done(&self, index: usize, outcome: Result<QrFactorization<f64>, QrError>) {
            let mut slots = self.results.lock();
            assert!(slots[index].is_none(), "item {index} delivered twice");
            slots[index] = Some(outcome);
        }
    }

    /// The tentpole contract end to end: one fused streaming job spanning
    /// *different* plans (shapes, tile sizes, inner blockings, trees), fed
    /// through both input modes, with every item bitwise equal to its own
    /// sequential single-plan reference.
    #[test]
    fn mixed_plan_stream_matches_each_items_sequential_reference() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(3).unwrap();
        let seq = QrContext::new(1).unwrap();
        let plans: Vec<Arc<QrPlan<f64>>> = vec![
            Arc::new(QrPlan::new(40, 24, QrConfig::new(8)).unwrap()),
            Arc::new(
                QrPlan::new(
                    18,
                    18,
                    QrConfig::new(6)
                        .with_inner_block(3)
                        .with_algorithm(Algorithm::FlatTree),
                )
                .unwrap(),
            ),
            Arc::new(QrPlan::new(33, 10, QrConfig::new(5)).unwrap()),
        ];
        // Two rounds: [0, 1, 2, 1] then [2, 0] — distinct task counts, so
        // the heterogeneous (offset) mapping is exercised, and plan 1
        // appears twice in one group to cover same-plan copies inside a
        // mixed group.
        for round in [vec![0usize, 1, 2, 1], vec![2, 0]] {
            let mats: Vec<Matrix<f64>> = round
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let plan = &plans[p];
                    random_matrix(plan.m(), plan.n(), 7_000 + i as u64)
                })
                .collect();
            let entries: Vec<StreamEntry<f64>> = round
                .iter()
                .zip(&mats)
                .enumerate()
                .map(|(i, (&p, a))| StreamEntry {
                    plan: Arc::clone(&plans[p]),
                    // Alternate input modes: even items pre-tiled, odd items
                    // dense (worker-side lazy tiling).
                    input: if i % 2 == 0 {
                        StreamInput::Tiled(TiledMatrix::from_dense_padded(a, plans[p].tile_size()))
                    } else {
                        StreamInput::Dense(Arc::new(a.clone()))
                    },
                    probe: i,
                })
                .collect();
            let sink = Arc::new(CollectSink {
                results: Mutex::new((0..round.len()).map(|_| None).collect()),
            });
            ctx.factorize_stream(entries, &(Arc::clone(&sink) as Arc<dyn ItemSink<f64>>));
            let results = sink.results.lock();
            for (i, (&p, a)) in round.iter().zip(&mats).enumerate() {
                let got = results[i]
                    .as_ref()
                    .expect("every item resolves")
                    .as_ref()
                    .expect("mixed-group item succeeds");
                let reference = seq.factorize(&plans[p], a).unwrap();
                assert_eq!(
                    got.factored_tiles(),
                    reference.factored_tiles(),
                    "round item {i} (plan {p}) must be bitwise equal to its sequential reference"
                );
            }
        }
    }

    /// Same-plan streaming groups must reduce to the historical uniform
    /// mapping: identical results to the sequential reference, via the
    /// pre-tiled input mode (the path the old runtime used).
    #[test]
    fn homogeneous_stream_group_still_matches_the_sequential_reference() {
        use tileqr_matrix::generate::random_matrix;
        let ctx = QrContext::new(2).unwrap();
        let seq = QrContext::new(1).unwrap();
        let plan = Arc::new(QrPlan::<f64>::new(24, 16, QrConfig::new(8)).unwrap());
        let mats: Vec<Matrix<f64>> = (0..3).map(|i| random_matrix(24, 16, 8_100 + i)).collect();
        let entries: Vec<StreamEntry<f64>> = mats
            .iter()
            .enumerate()
            .map(|(i, a)| StreamEntry {
                plan: Arc::clone(&plan),
                input: StreamInput::Tiled(TiledMatrix::from_dense_padded(a, plan.tile_size())),
                probe: i,
            })
            .collect();
        let sink = Arc::new(CollectSink {
            results: Mutex::new((0..mats.len()).map(|_| None).collect()),
        });
        ctx.factorize_stream(entries, &(Arc::clone(&sink) as Arc<dyn ItemSink<f64>>));
        let results = sink.results.lock();
        for (i, a) in mats.iter().enumerate() {
            let got = results[i]
                .as_ref()
                .expect("every item resolves")
                .as_ref()
                .expect("homogeneous item succeeds");
            assert_eq!(
                got.factored_tiles(),
                seq.factorize(&plan, a).unwrap().factored_tiles()
            );
        }
    }
}
