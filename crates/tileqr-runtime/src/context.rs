//! Session-style factorization API: [`QrContext`] + [`QrPlan`].
//!
//! The free functions of [`crate::driver`] are one-shot: every call re-tiles
//! the matrix, rebuilds the elimination list and [`TaskDag`], reallocates all
//! scratch, and spawns a fresh set of worker threads. That is the right shape
//! for a single large factorization, but a service factoring a *stream* of
//! moderate-size matrices pays the planning and pool-startup cost on every
//! request. This module splits the API the way PLASMA splits it:
//!
//! * [`QrContext`] — the long-lived runtime: a persistent, parkable worker
//!   pool (built once from `threads` + [`SchedulerKind`]; workers idle
//!   through the executor's [`Backoff`](crate::sync::Backoff) between jobs
//!   instead of being respawned) plus the scheduling policy.
//! * [`QrPlan`] — the reusable schedule for one problem shape
//!   `(m, n, nb, ib, algorithm, family)`: the elimination list, the task
//!   DAG with its CSR successor lists, the critical-path priorities
//!   (computed lazily, shared by every job), and a checkout cache of
//!   per-worker kernel [`Workspace`]s. Building a plan is the *planning*
//!   phase; executing it is pure kernel time.
//! * [`QrError`] — typed errors replacing the driver's panics: bad shapes,
//!   zero tile sizes and oversized thread counts are reported as values.
//! * [`QrReflectors`] — the result of the in-place path
//!   [`QrContext::factorize_into`], which factors caller-owned tile storage
//!   without the dense→tiled copy and hands back only the `T` factors.
//!
//! ```
//! use tileqr_matrix::{generate::random_matrix, Matrix};
//! use tileqr_runtime::{QrConfig, QrContext, QrPlan};
//!
//! let a: Matrix<f64> = random_matrix(96, 48, 7);
//! let ctx = QrContext::new(2).unwrap();
//! let plan: QrPlan<f64> = QrPlan::new(96, 48, QrConfig::new(16)).unwrap();
//! for _ in 0..4 {
//!     let f = ctx.factorize(&plan, &a).unwrap(); // only kernel time after call 1
//!     assert!(f.residual(&a) < 1e-11);
//! }
//! ```
//!
//! Every execution path of the context (sequential, and each scheduler on
//! the persistent pool) runs the same kernels in a DAG-respecting order, so
//! results are **bitwise identical** to the legacy free functions — the
//! equivalence suite pins this down for `f64` and `Complex64`.

use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::{Arc, OnceLock};

use tileqr_core::algorithms::Algorithm;
use tileqr_core::dag::{KernelFamily, SuccessorsCsr, TaskDag};
use tileqr_kernels::{Trans, Workspace};
use tileqr_matrix::{Matrix, Scalar, TiledMatrix};

use crate::driver::{elimination_list_for, replay_q, QrConfig, QrFactorization};
use crate::executor::{
    dependency_counters, drive_worker, execute_sequential_with, LockedFifo, Scheduler,
    SchedulerKind, WorkStealing, WorkStealingPriority,
};
use crate::pool::{Job, WorkerPool};
use crate::state::FactorizationState;
use crate::sync::Mutex;

/// Hard upper bound on the worker-thread count of a [`QrContext`]; requests
/// beyond it are configuration mistakes (the pool would oversubscribe any
/// real machine by orders of magnitude) and are rejected as
/// [`QrError::TooManyThreads`].
pub const MAX_THREADS: usize = 1024;

/// Typed errors of the session API ([`QrContext`] / [`QrPlan`]).
///
/// The legacy free functions ([`crate::driver::qr_factorize`] & co.) keep
/// their documented panicking behavior; the context API reports the same
/// conditions as values.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QrError {
    /// The matrix is wide (`m < n`); tiled QR requires tall or square.
    WideMatrix {
        /// Row count of the offending matrix.
        m: usize,
        /// Column count of the offending matrix.
        n: usize,
    },
    /// The configured tile size is zero.
    ZeroTileSize,
    /// A context with zero worker threads was requested.
    ZeroThreads,
    /// More worker threads than [`MAX_THREADS`] were requested.
    TooManyThreads {
        /// The requested thread count.
        requested: usize,
        /// The maximum the context accepts.
        max: usize,
    },
    /// The dense matrix handed to [`QrContext::factorize`] does not have the
    /// shape the plan was built for.
    ShapeMismatch {
        /// `(m, n)` the plan was built for.
        expected: (usize, usize),
        /// `(m, n)` of the matrix actually supplied.
        got: (usize, usize),
    },
    /// The tiled matrix handed to [`QrContext::factorize_into`] does not
    /// match the plan's tile grid.
    PlanMismatch {
        /// `(p, q, nb)` the plan was built for.
        expected: (usize, usize, usize),
        /// `(p, q, nb)` of the tiles actually supplied.
        got: (usize, usize, usize),
    },
    /// A right-hand side's length does not match the factored matrix.
    RhsLength {
        /// Expected length (`m` of the factored matrix).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for QrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrError::WideMatrix { m, n } => write!(
                f,
                "tiled QR requires a tall or square matrix (m ≥ n), got {m} × {n}"
            ),
            QrError::ZeroTileSize => write!(f, "tile size must be at least 1"),
            QrError::ZeroThreads => write!(f, "a context needs at least one worker thread"),
            QrError::TooManyThreads { requested, max } => {
                write!(f, "{requested} worker threads requested, maximum is {max}")
            }
            QrError::ShapeMismatch { expected, got } => write!(
                f,
                "plan built for a {} × {} matrix, got {} × {}",
                expected.0, expected.1, got.0, got.1
            ),
            QrError::PlanMismatch { expected, got } => write!(
                f,
                "plan built for a {} × {} grid of nb = {} tiles, got {} × {} of nb = {}",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            QrError::RhsLength { expected, got } => write!(
                f,
                "right-hand side length {got} does not match the factored row count {expected}"
            ),
        }
    }
}

impl std::error::Error for QrError {}

/// The scalar-independent part of a plan: the schedule itself.
///
/// Shared (`Arc`) between the plan, in-flight pool jobs and every
/// [`QrFactorization`]/[`QrReflectors`] produced from it, so the DAG is built
/// once per shape and never copied.
pub(crate) struct PlanCore {
    pub(crate) dag: Arc<TaskDag>,
    pub(crate) succ: SuccessorsCsr,
    /// Initially-ready task indices, in topological order.
    pub(crate) roots: Vec<usize>,
    /// Largest successor batch a single task completion can enable.
    pub(crate) max_out_degree: usize,
    /// Weighted critical-path-to-exit priorities, computed on first use by
    /// the priority scheduler and shared by every subsequent job.
    priorities: OnceLock<Arc<[u64]>>,
}

impl PlanCore {
    fn priorities(&self) -> Arc<[u64]> {
        self.priorities
            .get_or_init(|| self.dag.priorities_with(&self.succ).into())
            .clone()
    }
}

/// A reusable factorization schedule for one problem shape.
///
/// A plan fixes `(m, n, nb, ib, algorithm, family)` and precomputes
/// everything about the factorization that does not depend on the matrix
/// *values*: the elimination list, the task DAG (with CSR successor lists
/// and root set), the critical-path priorities, and a cache of per-worker
/// kernel workspaces sized for `(nb, ib)`. Repeated factorizations of the
/// same shape through [`QrContext::factorize`] then pay only kernel time
/// (plus the unavoidable per-call tile/`T`-factor storage).
///
/// The type parameter is the element type the plan's workspaces serve
/// (`f64` or `Complex64`).
pub struct QrPlan<T: Scalar> {
    m: usize,
    n: usize,
    nb: usize,
    ib: usize,
    algorithm: Algorithm,
    family: KernelFamily,
    p: usize,
    q: usize,
    pub(crate) core: Arc<PlanCore>,
    /// Checkout cache of kernel workspaces: taken at job start, returned at
    /// job end, grown on demand up to the largest worker count seen.
    ws_cache: Mutex<Vec<Workspace<T>>>,
    /// Largest single checkout so far — the retention bound of `ws_cache`.
    /// Without it, concurrent `factorize` bursts (each building `threads`
    /// fresh workspaces against a momentarily-empty cache) would ratchet the
    /// cache up without limit; with it, surplus returns are dropped.
    ws_high_water: std::sync::atomic::AtomicUsize,
}

impl<T: Scalar> std::fmt::Debug for QrPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrPlan")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("tile_size", &self.nb)
            .field("inner_block", &self.ib)
            .field("algorithm", &self.algorithm)
            .field("family", &self.family)
            .field("grid", &(self.p, self.q))
            .field("tasks", &self.core.dag.len())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> QrPlan<T> {
    /// Builds the plan for factorizing `m × n` matrices with the shape
    /// parameters of `config` (`tile_size`, `inner_block`, `algorithm`,
    /// `family` — the `threads`/`scheduler` fields belong to the
    /// [`QrContext`] and are ignored here).
    pub fn new(m: usize, n: usize, config: QrConfig) -> Result<Self, QrError> {
        if config.tile_size == 0 {
            return Err(QrError::ZeroTileSize);
        }
        if m < n {
            return Err(QrError::WideMatrix { m, n });
        }
        let nb = config.tile_size;
        let ib = config.effective_inner_block();
        // Degenerate empty matrices pad to one tile, exactly like
        // `TiledMatrix::from_dense_padded`.
        let p = m.div_ceil(nb).max(1);
        let q = n.div_ceil(nb).max(1);
        let list = elimination_list_for(config.algorithm, p, q);
        let dag = TaskDag::build(&list, config.family);
        let succ = dag.successors_csr();
        let roots = crate::executor::initial_roots(&dag);
        let max_out_degree = (0..dag.len()).map(|i| succ.of(i).len()).max().unwrap_or(0);
        Ok(QrPlan {
            m,
            n,
            nb,
            ib,
            algorithm: config.algorithm,
            family: config.family,
            p,
            q,
            core: Arc::new(PlanCore {
                dag: Arc::new(dag),
                succ,
                roots,
                max_out_degree,
                priorities: OnceLock::new(),
            }),
            ws_cache: Mutex::new(Vec::new()),
            ws_high_water: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Row count the plan factorizes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Column count the plan factorizes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile size `nb`.
    pub fn tile_size(&self) -> usize {
        self.nb
    }

    /// Inner blocking factor `ib` the kernels will run with.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// Reduction tree the schedule was generated from.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Kernel family (TT or TS) of the schedule.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Tile rows `p` of the padded grid.
    pub fn tile_rows(&self) -> usize {
        self.p
    }

    /// Tile columns `q` of the padded grid.
    pub fn tile_cols(&self) -> usize {
        self.q
    }

    /// Number of kernel tasks one factorization executes.
    pub fn task_count(&self) -> usize {
        self.core.dag.len()
    }

    /// Takes `count` workspaces out of the cache, building any that are
    /// missing; the caller returns them through
    /// [`QrPlan::restore_workspaces`] when the job is done.
    fn checkout_workspaces(&self, count: usize) -> Vec<Workspace<T>> {
        self.ws_high_water
            .fetch_max(count, std::sync::atomic::Ordering::Relaxed);
        let mut cache = self.ws_cache.lock();
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match cache.pop() {
                Some(ws) => out.push(ws),
                None => out.push(Workspace::with_inner_block(self.nb, self.ib)),
            }
        }
        out
    }

    /// Returns checked-out workspaces to the cache for the next job,
    /// retaining at most one workspace per worker of the widest checkout
    /// ever made (surplus built during concurrent bursts is dropped).
    fn restore_workspaces(&self, ws: impl IntoIterator<Item = Workspace<T>>) {
        let cap = self
            .ws_high_water
            .load(std::sync::atomic::Ordering::Relaxed);
        let mut cache = self.ws_cache.lock();
        cache.extend(ws);
        cache.truncate(cap);
    }
}

/// One factorization executed on the persistent pool: the shared state, the
/// schedule, this job's scheduler instance and dependency counters, and one
/// workspace slot per worker.
struct FactorJob<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> {
    state: Arc<FactorizationState<T>>,
    core: Arc<PlanCore>,
    sched: S,
    remaining: Vec<AtomicUsize>,
    completed: AtomicUsize,
    aborted: AtomicBool,
    ws_slots: Arc<Vec<Mutex<Option<Workspace<T>>>>>,
}

impl<T: Scalar<Real = f64>, S: Scheduler + Send + Sync> Job for FactorJob<T, S> {
    fn run(&self, w: usize) {
        let mut slot = self.ws_slots[w].lock();
        let ws = slot.as_mut().expect("one workspace is staged per worker");
        drive_worker(
            &self.core.dag,
            &self.core.succ,
            &self.sched,
            &self.remaining,
            &self.completed,
            &self.aborted,
            self.core.max_out_degree,
            w,
            &mut |kind| self.state.run_ws(kind, ws),
        );
    }
}

/// A long-lived factorization runtime: a persistent worker pool plus a
/// scheduling policy.
///
/// Build one context per service (or per thread-count/scheduler choice) and
/// reuse it for every factorization; combine with a [`QrPlan`] per problem
/// shape so repeated factorizations skip planning entirely. With
/// `threads == 1` no pool is spawned and every factorization runs on the
/// calling thread in topological order (the bitwise reference order).
///
/// The context is `Sync`; concurrent `factorize` calls from several threads
/// are safe but serialized — the pool runs one job at a time.
pub struct QrContext {
    threads: usize,
    scheduler: SchedulerKind,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for QrContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrContext")
            .field("threads", &self.threads)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

impl QrContext {
    /// Builds a context with `threads` persistent workers and the default
    /// scheduler ([`SchedulerKind::WorkStealing`]).
    pub fn new(threads: usize) -> Result<Self, QrError> {
        QrContext::with_scheduler(threads, SchedulerKind::default())
    }

    /// Validates a worker-thread count; factored out of the constructor so
    /// the bounds (including the [`MAX_THREADS`] boundary itself) are
    /// testable without actually spawning a pool.
    pub(crate) fn validate_threads(threads: usize) -> Result<(), QrError> {
        if threads == 0 {
            return Err(QrError::ZeroThreads);
        }
        if threads > MAX_THREADS {
            return Err(QrError::TooManyThreads {
                requested: threads,
                max: MAX_THREADS,
            });
        }
        Ok(())
    }

    /// Builds a context with `threads` persistent workers and an explicit
    /// ready-task scheduling policy.
    pub fn with_scheduler(threads: usize, scheduler: SchedulerKind) -> Result<Self, QrError> {
        QrContext::validate_threads(threads)?;
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        Ok(QrContext {
            threads,
            scheduler,
            pool,
        })
    }

    /// Number of worker threads (1 = sequential, no pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ready-task scheduling policy of the pool.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Factorizes a dense matrix of the plan's shape, returning the full
    /// [`QrFactorization`] handle (extract `R`, apply `Q`/`Qᴴ`, …).
    ///
    /// The matrix values are copied into fresh tile storage; use
    /// [`QrContext::factorize_into`] to skip that copy on a hot path.
    pub fn factorize<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        a: &Matrix<T>,
    ) -> Result<QrFactorization<T>, QrError> {
        if a.shape() != (plan.m, plan.n) {
            return Err(QrError::ShapeMismatch {
                expected: (plan.m, plan.n),
                got: a.shape(),
            });
        }
        let tiled = TiledMatrix::from_dense_padded(a, plan.nb);
        let (tiles, t_geqrt, t_elim) = self.run_plan(plan, tiled);
        Ok(QrFactorization::from_parts(
            plan.m,
            plan.n,
            plan.nb,
            plan.ib,
            tiles,
            t_geqrt,
            t_elim,
            Arc::clone(&plan.core.dag),
        ))
    }

    /// Factorizes caller-owned tile storage **in place** — the tiles are
    /// overwritten with `R` and the Householder vectors, and only the `T`
    /// factors come back, as a [`QrReflectors`] handle. Nothing about the
    /// matrix values is copied, so a caller that keeps refilling one
    /// [`TiledMatrix`] buffer (e.g. via
    /// [`TiledMatrix::fill_from_dense_padded`]) factors a stream of
    /// matrices with zero per-call tile allocation.
    ///
    /// The grid must match the plan: `p × q` tiles of order `nb` (the shape
    /// [`TiledMatrix::from_dense_padded`] produces for an `m × n` matrix).
    ///
    /// If a kernel panics (a bug, not a recoverable condition), the panic is
    /// propagated and the tile storage is left in an unspecified state.
    pub fn factorize_into<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiles: &mut TiledMatrix<T>,
    ) -> Result<QrReflectors<T>, QrError> {
        let got = (tiles.tile_rows(), tiles.tile_cols(), tiles.tile_size());
        if got != (plan.p, plan.q, plan.nb) {
            return Err(QrError::PlanMismatch {
                expected: (plan.p, plan.q, plan.nb),
                got,
            });
        }
        let owned = std::mem::replace(tiles, TiledMatrix::from_tiles(Vec::new(), 0, 0, plan.nb));
        let (factored, t_geqrt, t_elim) = self.run_plan(plan, owned);
        *tiles = factored;
        Ok(QrReflectors {
            m: plan.m,
            n: plan.n,
            nb: plan.nb,
            ib: plan.ib,
            p: plan.p,
            q: plan.q,
            dag: Arc::clone(&plan.core.dag),
            t_geqrt,
            t_elim,
        })
    }

    /// Executes the plan's DAG against `tiled`, sequentially or on the pool,
    /// and returns the factored parts.
    #[allow(clippy::type_complexity)]
    fn run_plan<T: Scalar<Real = f64>>(
        &self,
        plan: &QrPlan<T>,
        tiled: TiledMatrix<T>,
    ) -> (
        TiledMatrix<T>,
        Vec<Option<Matrix<T>>>,
        Vec<Option<Matrix<T>>>,
    ) {
        let state = FactorizationState::with_inner_block(tiled, plan.ib);
        match &self.pool {
            None => {
                let mut ws = plan.checkout_workspaces(1);
                execute_sequential_with(&plan.core.dag, &mut ws[0], |task, ws| {
                    state.run_ws(task, ws)
                });
                plan.restore_workspaces(ws);
                state.into_parts()
            }
            Some(pool) => {
                let n = plan.core.dag.len();
                let threads = pool.threads();
                match self.scheduler {
                    SchedulerKind::LockedFifo => {
                        self.run_job(plan, pool, state, LockedFifo::new(n))
                    }
                    SchedulerKind::WorkStealing => {
                        self.run_job(plan, pool, state, WorkStealing::new(n, threads))
                    }
                    SchedulerKind::WorkStealingPriority => self.run_job(
                        plan,
                        pool,
                        state,
                        WorkStealingPriority::new_shared(plan.core.priorities(), threads),
                    ),
                }
            }
        }
    }

    /// Packages one factorization as a pool job, runs it, and recovers the
    /// state and workspaces (both are uniquely owned again once every worker
    /// signalled completion).
    #[allow(clippy::type_complexity)]
    fn run_job<T: Scalar<Real = f64>, S: Scheduler + Send + Sync + 'static>(
        &self,
        plan: &QrPlan<T>,
        pool: &WorkerPool,
        state: FactorizationState<T>,
        sched: S,
    ) -> (
        TiledMatrix<T>,
        Vec<Option<Matrix<T>>>,
        Vec<Option<Matrix<T>>>,
    ) {
        let threads = pool.threads();
        let mut roots = plan.core.roots.clone();
        sched.seed(&mut roots);
        let ws_slots: Arc<Vec<Mutex<Option<Workspace<T>>>>> = Arc::new(
            plan.checkout_workspaces(threads)
                .into_iter()
                .map(|ws| Mutex::new(Some(ws)))
                .collect(),
        );
        let state = Arc::new(state);
        let job: Arc<dyn Job> = Arc::new(FactorJob {
            state: Arc::clone(&state),
            core: Arc::clone(&plan.core),
            sched,
            remaining: dependency_counters(&plan.core.dag),
            completed: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            ws_slots: Arc::clone(&ws_slots),
        });
        pool.run(job);
        // `pool.run` returns only after every worker dropped its reference
        // to the job (and the job itself was dropped), so both Arcs are
        // uniquely owned again.
        let slots = Arc::try_unwrap(ws_slots)
            .unwrap_or_else(|_| panic!("workspace slots still shared after the job completed"));
        plan.restore_workspaces(slots.into_iter().filter_map(Mutex::into_inner));
        Arc::try_unwrap(state)
            .unwrap_or_else(|_| panic!("factorization state still shared after the job completed"))
            .into_parts()
    }
}

/// The `T` factors of an in-place factorization ([`QrContext::factorize_into`]).
///
/// The factored tiles stay with the caller; combined with them, this handle
/// replays the block reflectors (`Q`/`Qᴴ` application, `R` extraction) or
/// upgrades into a self-contained [`QrFactorization`] by taking ownership of
/// the tiles.
pub struct QrReflectors<T: Scalar> {
    m: usize,
    n: usize,
    nb: usize,
    ib: usize,
    p: usize,
    q: usize,
    dag: Arc<TaskDag>,
    t_geqrt: Vec<Option<Matrix<T>>>,
    t_elim: Vec<Option<Matrix<T>>>,
}

impl<T: Scalar> std::fmt::Debug for QrReflectors<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrReflectors")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("tile_size", &self.nb)
            .field("inner_block", &self.ib)
            .field("grid", &(self.p, self.q))
            .finish_non_exhaustive()
    }
}

impl<T: Scalar<Real = f64>> QrReflectors<T> {
    /// Original (unpadded) row count of the factored matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Original (unpadded) column count of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner blocking factor the `T` factors are stored with.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// Panics unless `tiles` has the grid this factorization was computed
    /// on — the `tiles` handed back by [`QrContext::factorize_into`].
    fn check_tiles(&self, tiles: &TiledMatrix<T>) {
        assert!(
            (tiles.tile_rows(), tiles.tile_cols(), tiles.tile_size()) == (self.p, self.q, self.nb),
            "tile grid does not match the factorization ({}×{} of nb={})",
            self.p,
            self.q,
            self.nb
        );
    }

    /// The upper-triangular factor `R` (`n × n`), read out of the factored
    /// tiles.
    pub fn r(&self, tiles: &TiledMatrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        let full = tiles.to_dense();
        let mut r = full.sub_matrix(0, 0, self.n, self.n);
        r.zero_below_diagonal();
        r
    }

    /// Applies `Qᴴ` to a dense matrix with `m` rows, replaying the block
    /// reflectors stored in `tiles`.
    pub fn apply_qh(&self, tiles: &TiledMatrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        replay_q(
            tiles,
            &self.t_geqrt,
            &self.t_elim,
            &self.dag,
            self.ib,
            self.m,
            b,
            Trans::ConjTrans,
        )
    }

    /// Applies `Q` to a dense matrix with `m` rows.
    pub fn apply_q(&self, tiles: &TiledMatrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.check_tiles(tiles);
        replay_q(
            tiles,
            &self.t_geqrt,
            &self.t_elim,
            &self.dag,
            self.ib,
            self.m,
            b,
            Trans::NoTrans,
        )
    }

    /// Upgrades into a self-contained [`QrFactorization`] by taking
    /// ownership of the factored tiles.
    pub fn into_factorization(self, tiles: TiledMatrix<T>) -> QrFactorization<T> {
        self.check_tiles(&tiles);
        QrFactorization::from_parts(
            self.m,
            self.n,
            self.nb,
            self.ib,
            tiles,
            self.t_geqrt,
            self.t_elim,
            self.dag,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::generate::random_matrix;

    #[test]
    fn plan_rejects_bad_shapes() {
        assert_eq!(
            QrPlan::<f64>::new(4, 8, QrConfig::new(2)).err(),
            Some(QrError::WideMatrix { m: 4, n: 8 })
        );
        assert_eq!(
            QrPlan::<f64>::new(8, 4, QrConfig::new(0)).err(),
            Some(QrError::ZeroTileSize)
        );
    }

    #[test]
    fn context_rejects_bad_thread_counts() {
        assert_eq!(QrContext::new(0).err(), Some(QrError::ZeroThreads));
        assert_eq!(
            QrContext::new(MAX_THREADS + 1).err(),
            Some(QrError::TooManyThreads {
                requested: MAX_THREADS + 1,
                max: MAX_THREADS
            })
        );
        assert!(QrContext::new(1).unwrap().pool.is_none());
        // The boundary itself is accepted; validated without spawning 1024
        // parked workers.
        assert_eq!(QrContext::validate_threads(MAX_THREADS), Ok(()));
        assert_eq!(
            QrContext::validate_threads(MAX_THREADS + 1),
            Err(QrError::TooManyThreads {
                requested: MAX_THREADS + 1,
                max: MAX_THREADS
            })
        );
        assert_eq!(QrContext::validate_threads(0), Err(QrError::ZeroThreads));
    }

    #[test]
    fn factorize_checks_the_matrix_shape() {
        let ctx = QrContext::new(1).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(12, 8, QrConfig::new(4)).unwrap();
        let wrong: Matrix<f64> = random_matrix(12, 4, 1);
        assert_eq!(
            ctx.factorize(&plan, &wrong).err(),
            Some(QrError::ShapeMismatch {
                expected: (12, 8),
                got: (12, 4)
            })
        );
    }

    #[test]
    fn factorize_into_checks_the_tile_grid() {
        let ctx = QrContext::new(1).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(12, 8, QrConfig::new(4)).unwrap();
        let mut tiles = TiledMatrix::<f64>::zeros(2, 2, 4);
        assert_eq!(
            ctx.factorize_into(&plan, &mut tiles).err(),
            Some(QrError::PlanMismatch {
                expected: (3, 2, 4),
                got: (2, 2, 4)
            })
        );
    }

    #[test]
    fn repeated_factorizations_reuse_the_plan() {
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(24, 16, QrConfig::new(4)).unwrap();
        let a: Matrix<f64> = random_matrix(24, 16, 3);
        let first = ctx.factorize(&plan, &a).unwrap();
        for _ in 0..3 {
            let again = ctx.factorize(&plan, &a).unwrap();
            assert_eq!(again.r(), first.r(), "plan reuse must be deterministic");
        }
        assert!(first.residual(&a) < 1e-11);
    }

    #[test]
    fn in_place_matches_the_copying_path_bitwise() {
        let ctx = QrContext::new(2).unwrap();
        let plan: QrPlan<f64> = QrPlan::new(20, 12, QrConfig::new(4)).unwrap();
        let a: Matrix<f64> = random_matrix(20, 12, 5);
        let f = ctx.factorize(&plan, &a).unwrap();
        let mut tiles = TiledMatrix::from_dense_padded(&a, 4);
        let refl = ctx.factorize_into(&plan, &mut tiles).unwrap();
        assert_eq!(&tiles, f.factored_tiles());
        assert_eq!(refl.r(&tiles), f.r());
        let b: Matrix<f64> = random_matrix(20, 2, 6);
        assert_eq!(refl.apply_qh(&tiles, &b), f.apply_qh(&b));
        let g = refl.into_factorization(tiles);
        assert_eq!(g.r(), f.r());
    }

    #[test]
    fn workspace_cache_is_bounded_by_the_widest_checkout() {
        // Simulate a concurrent burst: three checkouts in flight at once
        // against a cold cache. The cache must retain at most one workspace
        // per worker of the widest checkout, not the sum of the burst.
        let plan: QrPlan<f64> = QrPlan::new(16, 8, QrConfig::new(4)).unwrap();
        let a = plan.checkout_workspaces(2);
        let b = plan.checkout_workspaces(2);
        let c = plan.checkout_workspaces(2);
        plan.restore_workspaces(a);
        plan.restore_workspaces(b);
        plan.restore_workspaces(c);
        assert!(plan.ws_cache.lock().len() <= 2);
        // A wider context later raises the retention bound.
        let d = plan.checkout_workspaces(3);
        plan.restore_workspaces(d);
        assert!(plan.ws_cache.lock().len() <= 3);
    }

    #[test]
    fn error_messages_are_displayable() {
        let e = QrError::WideMatrix { m: 2, n: 5 };
        assert!(e.to_string().contains("m ≥ n"));
        let e = QrError::TooManyThreads {
            requested: 9999,
            max: MAX_THREADS,
        };
        assert!(e.to_string().contains("9999"));
    }
}
