//! Shared factorization state and the task → kernel mapping.
//!
//! Every tile of the matrix, and every auxiliary `T` factor, lives behind its
//! own `parking_lot::Mutex`. Conflicting tasks are already ordered by the
//! DAG, so locks are essentially uncontended; they exist to make the
//! concurrent access to *different parts of the same tile* (e.g. UNMQR
//! reading the Householder vectors while a TTQRT rewrites the R part above
//! them) trivially sound. Each task acquires all the locks it needs in a
//! single global order (tile index, then auxiliary arrays), so the executor
//! can never deadlock.

use parking_lot::Mutex;
use tileqr_core::TaskKind;
use tileqr_kernels::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, Trans};
use tileqr_matrix::{Matrix, Scalar, TiledMatrix};

/// Lock-protected storage for the matrix being factored plus the reflector
/// `T` factors produced along the way.
pub struct FactorizationState<T: Scalar> {
    p: usize,
    q: usize,
    nb: usize,
    /// Tiles of the matrix, tile-column-major, each behind its own lock.
    tiles: Vec<Mutex<Matrix<T>>>,
    /// `T` factor of `GEQRT(row, col)` (None until that kernel has run).
    t_geqrt: Vec<Mutex<Option<Matrix<T>>>>,
    /// `T` factor of the TSQRT/TTQRT that eliminated tile `(row, col)`.
    t_elim: Vec<Mutex<Option<Matrix<T>>>>,
}

impl<T: Scalar<Real = f64>> FactorizationState<T> {
    /// Takes ownership of a tiled matrix and prepares the auxiliary storage.
    pub fn new(a: TiledMatrix<T>) -> Self {
        let (tiles, p, q, nb) = a.into_tiles();
        let tiles = tiles.into_iter().map(Mutex::new).collect();
        let t_geqrt = (0..p * q).map(|_| Mutex::new(None)).collect();
        let t_elim = (0..p * q).map(|_| Mutex::new(None)).collect();
        FactorizationState { p, q, nb, tiles, t_geqrt, t_elim }
    }

    /// Tile rows of the grid.
    pub fn tile_rows(&self) -> usize {
        self.p
    }

    /// Tile columns of the grid.
    pub fn tile_cols(&self) -> usize {
        self.q
    }

    /// Tile size.
    pub fn tile_size(&self) -> usize {
        self.nb
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.p && col < self.q);
        col * self.p + row
    }

    /// Executes one task of the DAG. Safe to call concurrently for tasks that
    /// are not ordered by the DAG.
    pub fn run(&self, task: TaskKind) {
        match task {
            TaskKind::Geqrt { row, col } => {
                let mut tile = self.tiles[self.idx(row, col)].lock();
                let mut t = Matrix::zeros(self.nb, self.nb);
                geqrt(&mut tile, &mut t);
                *self.t_geqrt[self.idx(row, col)].lock() = Some(t);
            }
            TaskKind::Unmqr { row, col, j } => {
                // lock order: smaller tile index first
                let (iv, ic) = (self.idx(row, col), self.idx(row, j));
                debug_assert!(iv < ic);
                let v = self.tiles[iv].lock();
                let mut c = self.tiles[ic].lock();
                let t_guard = self.t_geqrt[iv].lock();
                let t = t_guard.as_ref().expect("UNMQR before GEQRT");
                unmqr(&v, t, &mut c, Trans::ConjTrans);
            }
            TaskKind::Tsqrt { row, piv, col } => {
                let (ip, ir) = (self.idx(piv, col), self.idx(row, col));
                let (mut first, mut second) = self.lock_pair(ip, ir);
                let mut t = Matrix::zeros(self.nb, self.nb);
                // first/second are ordered by index; map back to pivot/row
                let (r1, a2) = if ip < ir { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
                tsqrt(r1, a2, &mut t);
                *self.t_elim[self.idx(row, col)].lock() = Some(t);
            }
            TaskKind::Ttqrt { row, piv, col } => {
                let (ip, ir) = (self.idx(piv, col), self.idx(row, col));
                let (mut first, mut second) = self.lock_pair(ip, ir);
                let mut t = Matrix::zeros(self.nb, self.nb);
                let (r1, r2) = if ip < ir { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
                ttqrt(r1, r2, &mut t);
                *self.t_elim[self.idx(row, col)].lock() = Some(t);
            }
            TaskKind::Tsmqr { row, piv, col, j } => {
                let iv = self.idx(row, col);
                let (ic1, ic2) = (self.idx(piv, j), self.idx(row, j));
                let v = self.tiles[iv].lock();
                let (mut first, mut second) = self.lock_pair(ic1, ic2);
                let t_guard = self.t_elim[iv].lock();
                let t = t_guard.as_ref().expect("TSMQR before TSQRT");
                let (c1, c2) = if ic1 < ic2 { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
                tsmqr(&v, t, c1, c2, Trans::ConjTrans);
            }
            TaskKind::Ttmqr { row, piv, col, j } => {
                let iv = self.idx(row, col);
                let (ic1, ic2) = (self.idx(piv, j), self.idx(row, j));
                let v = self.tiles[iv].lock();
                let (mut first, mut second) = self.lock_pair(ic1, ic2);
                let t_guard = self.t_elim[iv].lock();
                let t = t_guard.as_ref().expect("TTMQR before TTQRT");
                let (c1, c2) = if ic1 < ic2 { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
                ttmqr(&v, t, c1, c2, Trans::ConjTrans);
            }
        }
    }

    /// Locks two distinct tiles in global index order and returns the guards
    /// in (smaller-index, larger-index) order.
    fn lock_pair(&self, a: usize, b: usize) -> (parking_lot::MutexGuard<'_, Matrix<T>>, parking_lot::MutexGuard<'_, Matrix<T>>) {
        assert_ne!(a, b, "a task never locks the same tile twice");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let first = self.tiles[lo].lock();
        let second = self.tiles[hi].lock();
        (first, second)
    }

    /// Consumes the state and returns the factored tiles plus the `T`
    /// factors, for use by [`crate::driver::QrFactorization`].
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (TiledMatrix<T>, Vec<Option<Matrix<T>>>, Vec<Option<Matrix<T>>>) {
        let tiles: Vec<Matrix<T>> = self.tiles.into_iter().map(|m| m.into_inner()).collect();
        let tiled = TiledMatrix::from_tiles(tiles, self.p, self.q, self.nb);
        let t_geqrt = self.t_geqrt.into_iter().map(|m| m.into_inner()).collect();
        let t_elim = self.t_elim.into_iter().map(|m| m.into_inner()).collect();
        (tiled, t_geqrt, t_elim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_core::algorithms::Algorithm;
    use tileqr_core::dag::TaskDag;
    use tileqr_core::KernelFamily;
    use tileqr_matrix::generate::random_matrix;

    #[test]
    fn state_roundtrip_preserves_grid_shape() {
        let a = random_matrix::<f64>(12, 8, 1);
        let tiled = TiledMatrix::from_dense(&a, 4);
        let state = FactorizationState::new(tiled.clone());
        assert_eq!(state.tile_rows(), 3);
        assert_eq!(state.tile_cols(), 2);
        assert_eq!(state.tile_size(), 4);
        let (back, tg, te) = state.into_parts();
        assert_eq!(back, tiled);
        assert!(tg.iter().all(|t| t.is_none()));
        assert!(te.iter().all(|t| t.is_none()));
    }

    #[test]
    fn running_all_tasks_populates_t_factors() {
        let a = random_matrix::<f64>(12, 8, 2);
        let tiled = TiledMatrix::from_dense(&a, 4);
        let state = FactorizationState::new(tiled);
        let dag = TaskDag::build(&Algorithm::Greedy.elimination_list(3, 2), KernelFamily::TT);
        for task in &dag.tasks {
            state.run(task.kind);
        }
        let (_tiles, t_geqrt, t_elim) = state.into_parts();
        // TT: every active tile has a GEQRT T factor
        assert_eq!(t_geqrt.iter().filter(|t| t.is_some()).count(), 3 + 2);
        // and every sub-diagonal tile has an elimination T factor
        assert_eq!(t_elim.iter().filter(|t| t.is_some()).count(), 2 + 1);
    }
}
