//! Shared factorization state and the task → kernel mapping.
//!
//! Every tile of the matrix, and every auxiliary `T` factor, lives behind its
//! own [`Mutex`](crate::sync::Mutex). Conflicting tasks are already ordered
//! by the DAG, so locks are essentially uncontended; they exist to make the
//! concurrent access to *different parts of the same tile* (e.g. UNMQR
//! reading the Householder vectors while a TTQRT rewrites the R part above
//! them) trivially sound. Each task acquires all the locks it needs in a
//! single global order (tile index, then auxiliary arrays), so the executor
//! can never deadlock.
//!
//! All `T`-factor storage is preallocated in [`FactorizationState::new`]:
//! together with the per-worker [`Workspace`]s threaded in by the executor,
//! this makes [`FactorizationState::run_ws`] — the per-task hot path —
//! completely allocation-free.
//!
//! [`FactorizationState::run_ws`] is the task body every scheduler of the
//! executor drives ([`SchedulerKind`](crate::executor::SchedulerKind):
//! locked FIFO, work stealing, priority work stealing). It is
//! scheduler-agnostic by design: correctness relies only on the DAG
//! ordering conflicting tasks, never on *which* ready task runs first, so
//! the factorization output is bitwise identical under every policy.

use crate::sync::{Mutex, MutexGuard};
use tileqr_core::TaskKind;
use tileqr_kernels::{
    geqrt_ws, tsmqr_ws, tsqrt_ws, ttmqr_ws, ttqrt_ws, unmqr_ws, Trans, Workspace,
};
use tileqr_matrix::{Matrix, Scalar, TiledMatrix};

/// Lock-protected storage for the matrix being factored plus the reflector
/// `T` factors produced along the way.
pub struct FactorizationState<T: Scalar> {
    p: usize,
    q: usize,
    nb: usize,
    ib: usize,
    /// Tiles of the matrix, tile-column-major, each behind its own lock.
    tiles: Vec<Mutex<Matrix<T>>>,
    /// `T` factor of `GEQRT(row, col)`; preallocated (zero) until that
    /// kernel has run.
    t_geqrt: Vec<Mutex<Option<Matrix<T>>>>,
    /// `T` factor of the TSQRT/TTQRT that eliminated tile `(row, col)`;
    /// preallocated (zero) until that kernel has run.
    t_elim: Vec<Mutex<Option<Matrix<T>>>>,
}

impl<T: Scalar<Real = f64>> FactorizationState<T> {
    /// Takes ownership of a tiled matrix and prepares the auxiliary storage
    /// with no inner blocking (`ib = nb`).
    pub fn new(a: TiledMatrix<T>) -> Self {
        let nb = a.tile_size();
        FactorizationState::with_inner_block(a, nb)
    }

    /// Takes ownership of a tiled matrix and prepares the auxiliary storage
    /// for kernels running with inner blocking factor `ib` (clamped to
    /// `1..=nb`).
    ///
    /// Every `T`-factor slot is allocated here, up front, so no task ever
    /// allocates on the hot path. The slots use PLASMA's `ib`-blocked
    /// `ib × nb` T-factor layout (one `w × w` triangle per `ib`-column
    /// panel) — with `ib = nb` this is the historical square layout. The
    /// workspaces threaded in by the executor must be built with the same
    /// `ib` ([`Workspace::with_inner_block`]).
    pub fn with_inner_block(a: TiledMatrix<T>, ib: usize) -> Self {
        FactorizationState::with_t_supplier(a, ib, &mut |r, c| Matrix::zeros(r, c))
    }

    /// Like [`FactorizationState::with_inner_block`], but draws every
    /// `T`-factor slot from `supply` instead of allocating it — the seam
    /// that lets a reusable plan ([`QrPlan`](crate::context::QrPlan)) feed
    /// recycled buffers back into the state, removing the last per-call
    /// allocation that scales with the tile grid.
    ///
    /// `supply(rows, cols)` is called exactly `2 · p · q` times and must
    /// return an all-zero `rows × cols` matrix (`rows` is the clamped inner
    /// blocking factor, `cols` the tile size) — recycled buffers must be
    /// zeroed by the supplier so results stay bitwise identical to the
    /// allocating constructor.
    pub fn with_t_supplier(
        a: TiledMatrix<T>,
        ib: usize,
        supply: &mut dyn FnMut(usize, usize) -> Matrix<T>,
    ) -> Self {
        let (tiles, p, q, nb) = a.into_tiles();
        let ib = ib.clamp(1, nb.max(1));
        let tiles = tiles.into_iter().map(Mutex::new).collect();
        let mut slot = || {
            let m = supply(ib, nb);
            debug_assert_eq!(m.shape(), (ib, nb), "supplied T buffer has the wrong shape");
            debug_assert!(
                m.as_slice().iter().all(|v| *v == T::ZERO),
                "supplied T buffer must be zeroed"
            );
            Mutex::new(Some(m))
        };
        let t_geqrt = (0..p * q).map(|_| slot()).collect();
        let t_elim = (0..p * q).map(|_| slot()).collect();
        FactorizationState {
            p,
            q,
            nb,
            ib,
            tiles,
            t_geqrt,
            t_elim,
        }
    }

    /// Tile rows of the grid.
    pub fn tile_rows(&self) -> usize {
        self.p
    }

    /// Tile columns of the grid.
    pub fn tile_cols(&self) -> usize {
        self.q
    }

    /// Tile size.
    pub fn tile_size(&self) -> usize {
        self.nb
    }

    /// Inner blocking factor the `T`-factor storage is laid out for.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.p && col < self.q);
        col * self.p + row
    }

    /// Fills the tiles in place from a dense matrix, zero-padding partial
    /// edge tiles — the lazy-tiling seam of the streaming runtime: a state
    /// built over [`TiledMatrix::zeros`] on the dispatcher thread is
    /// populated here by the first *worker* that touches the copy, keeping
    /// the `O(m·n)` tiling cost off the admission path. Entries outside the
    /// dense matrix are left untouched, so the tiles must start zeroed for
    /// the result to match [`TiledMatrix::from_dense_padded`] bitwise.
    ///
    /// Locks each tile while writing; the caller must order this before any
    /// task of the copy runs (the stream job's tile gate does).
    ///
    /// # Panics
    /// Panics unless the dense matrix pads to this state's grid, i.e.
    /// `⌈rows/nb⌉ = p` and `⌈cols/nb⌉ = q` (with the same one-tile minimum
    /// as `from_dense_padded`).
    pub fn fill_tiles_from_dense(&self, a: &Matrix<T>) {
        let nb = self.nb;
        let (p, q) = (a.rows().div_ceil(nb).max(1), a.cols().div_ceil(nb).max(1));
        assert!(
            (p, q) == (self.p, self.q),
            "a {} × {} matrix pads to a {p} × {q} grid of nb = {nb} tiles, \
             but this state is {} × {}",
            a.rows(),
            a.cols(),
            self.p,
            self.q
        );
        for tj in 0..self.q {
            for ti in 0..self.p {
                let rows = nb.min(a.rows().saturating_sub(ti * nb));
                let cols = nb.min(a.cols().saturating_sub(tj * nb));
                if rows == 0 || cols == 0 {
                    continue;
                }
                let mut tile = self.tiles[self.idx(ti, tj)].lock();
                tile.copy_block(0, 0, a, ti * nb, tj * nb, rows, cols);
            }
        }
    }

    /// Executes one task of the DAG with a fresh workspace (matching the
    /// state's inner blocking) — allocating compatibility wrapper over
    /// [`FactorizationState::run_ws`].
    pub fn run(&self, task: TaskKind) {
        self.run_ws(task, &mut Workspace::with_inner_block(self.nb, self.ib));
    }

    /// Executes one task of the DAG against a caller-provided workspace
    /// (zero heap allocations). Safe to call concurrently for tasks that are
    /// not ordered by the DAG.
    pub fn run_ws(&self, task: TaskKind, ws: &mut Workspace<T>) {
        match task {
            TaskKind::Geqrt { row, col } => {
                let mut tile = self.tiles[self.idx(row, col)].lock();
                let mut t_slot = self.t_geqrt[self.idx(row, col)].lock();
                let t = t_slot.as_mut().expect("T factor storage is preallocated");
                geqrt_ws(&mut tile, t, ws);
            }
            TaskKind::Unmqr { row, col, j } => {
                // lock order: smaller tile index first
                let (iv, ic) = (self.idx(row, col), self.idx(row, j));
                debug_assert!(iv < ic);
                let v = self.tiles[iv].lock();
                let mut c = self.tiles[ic].lock();
                let t_guard = self.t_geqrt[iv].lock();
                let t = t_guard.as_ref().expect("UNMQR before GEQRT");
                unmqr_ws(&v, t, &mut c, Trans::ConjTrans, ws);
            }
            TaskKind::Tsqrt { row, piv, col } => {
                let (ip, ir) = (self.idx(piv, col), self.idx(row, col));
                let (mut first, mut second) = self.lock_pair(ip, ir);
                // first/second are ordered by index; map back to pivot/row
                let (r1, a2) = if ip < ir {
                    (&mut *first, &mut *second)
                } else {
                    (&mut *second, &mut *first)
                };
                let mut t_slot = self.t_elim[self.idx(row, col)].lock();
                let t = t_slot.as_mut().expect("T factor storage is preallocated");
                tsqrt_ws(r1, a2, t, ws);
            }
            TaskKind::Ttqrt { row, piv, col } => {
                let (ip, ir) = (self.idx(piv, col), self.idx(row, col));
                let (mut first, mut second) = self.lock_pair(ip, ir);
                let (r1, r2) = if ip < ir {
                    (&mut *first, &mut *second)
                } else {
                    (&mut *second, &mut *first)
                };
                let mut t_slot = self.t_elim[self.idx(row, col)].lock();
                let t = t_slot.as_mut().expect("T factor storage is preallocated");
                ttqrt_ws(r1, r2, t, ws);
            }
            TaskKind::Tsmqr { row, piv, col, j } => {
                let iv = self.idx(row, col);
                let (ic1, ic2) = (self.idx(piv, j), self.idx(row, j));
                let v = self.tiles[iv].lock();
                let (mut first, mut second) = self.lock_pair(ic1, ic2);
                let t_guard = self.t_elim[iv].lock();
                let t = t_guard.as_ref().expect("TSMQR before TSQRT");
                let (c1, c2) = if ic1 < ic2 {
                    (&mut *first, &mut *second)
                } else {
                    (&mut *second, &mut *first)
                };
                tsmqr_ws(&v, t, c1, c2, Trans::ConjTrans, ws);
            }
            TaskKind::Ttmqr { row, piv, col, j } => {
                let iv = self.idx(row, col);
                let (ic1, ic2) = (self.idx(piv, j), self.idx(row, j));
                let v = self.tiles[iv].lock();
                let (mut first, mut second) = self.lock_pair(ic1, ic2);
                let t_guard = self.t_elim[iv].lock();
                let t = t_guard.as_ref().expect("TTMQR before TTQRT");
                let (c1, c2) = if ic1 < ic2 {
                    (&mut *first, &mut *second)
                } else {
                    (&mut *second, &mut *first)
                };
                ttmqr_ws(&v, t, c1, c2, Trans::ConjTrans, ws);
            }
        }
    }

    /// Locks two distinct tiles in global index order and returns the guards
    /// in (smaller-index, larger-index) order.
    fn lock_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (MutexGuard<'_, Matrix<T>>, MutexGuard<'_, Matrix<T>>) {
        assert_ne!(a, b, "a task never locks the same tile twice");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let first = self.tiles[lo].lock();
        let second = self.tiles[hi].lock();
        (first, second)
    }

    /// Consumes the state and returns the factored tiles plus the `T`
    /// factors, for use by [`crate::driver::QrFactorization`].
    ///
    /// Every slot is `Some` (the storage is preallocated); slots whose kernel
    /// never ran hold a zero matrix.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        TiledMatrix<T>,
        Vec<Option<Matrix<T>>>,
        Vec<Option<Matrix<T>>>,
    ) {
        let tiles: Vec<Matrix<T>> = self.tiles.into_iter().map(|m| m.into_inner()).collect();
        let tiled = TiledMatrix::from_tiles(tiles, self.p, self.q, self.nb);
        let t_geqrt = self.t_geqrt.into_iter().map(|m| m.into_inner()).collect();
        let t_elim = self.t_elim.into_iter().map(|m| m.into_inner()).collect();
        (tiled, t_geqrt, t_elim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_core::algorithms::Algorithm;
    use tileqr_core::dag::TaskDag;
    use tileqr_core::KernelFamily;
    use tileqr_matrix::generate::random_matrix;

    #[test]
    fn state_roundtrip_preserves_grid_shape() {
        let a = random_matrix::<f64>(12, 8, 1);
        let tiled = TiledMatrix::from_dense(&a, 4);
        let state = FactorizationState::new(tiled.clone());
        assert_eq!(state.tile_rows(), 3);
        assert_eq!(state.tile_cols(), 2);
        assert_eq!(state.tile_size(), 4);
        let (back, tg, te) = state.into_parts();
        assert_eq!(back, tiled);
        // T storage is preallocated and zero until a kernel runs
        assert!(tg.iter().all(|t| t
            .as_ref()
            .is_some_and(|m| m.as_slice().iter().all(|v| *v == 0.0))));
        assert!(te.iter().all(|t| t
            .as_ref()
            .is_some_and(|m| m.as_slice().iter().all(|v| *v == 0.0))));
    }

    #[test]
    fn fill_tiles_from_dense_matches_from_dense_padded_bitwise() {
        // Ragged shape: exercises partial edge tiles and the zero padding.
        let a = random_matrix::<f64>(11, 6, 9);
        let eager = TiledMatrix::from_dense_padded(&a, 4);
        let lazy =
            FactorizationState::new(TiledMatrix::zeros(eager.tile_rows(), eager.tile_cols(), 4));
        lazy.fill_tiles_from_dense(&a);
        let (filled, _, _) = lazy.into_parts();
        assert_eq!(filled, eager);
    }

    #[test]
    fn inner_blocked_state_allocates_ib_blocked_t_factors() {
        let a = random_matrix::<f64>(12, 8, 4);
        let state = FactorizationState::with_inner_block(TiledMatrix::from_dense(&a, 4), 2);
        assert_eq!(state.inner_block(), 2);
        let dag = TaskDag::build(&Algorithm::Greedy.elimination_list(3, 2), KernelFamily::TT);
        let mut ws = Workspace::with_inner_block(4, 2);
        for task in &dag.tasks {
            state.run_ws(task.kind, &mut ws);
        }
        let (_tiles, t_geqrt, t_elim) = state.into_parts();
        for t in t_geqrt.iter().chain(t_elim.iter()) {
            assert_eq!(t.as_ref().unwrap().shape(), (2, 4), "T storage is ib × nb");
        }
    }

    #[test]
    fn running_all_tasks_populates_t_factors() {
        let a = random_matrix::<f64>(12, 8, 2);
        let tiled = TiledMatrix::from_dense(&a, 4);
        let state = FactorizationState::new(tiled);
        let dag = TaskDag::build(&Algorithm::Greedy.elimination_list(3, 2), KernelFamily::TT);
        let mut ws = Workspace::new(4);
        for task in &dag.tasks {
            state.run_ws(task.kind, &mut ws);
        }
        let (_tiles, t_geqrt, t_elim) = state.into_parts();
        let nonzero = |t: &Option<Matrix<f64>>| {
            t.as_ref()
                .is_some_and(|m| m.as_slice().iter().any(|v| *v != 0.0))
        };
        // TT: every active tile has a GEQRT T factor
        assert_eq!(t_geqrt.iter().filter(|t| nonzero(t)).count(), 3 + 2);
        // and every sub-diagonal tile has an elimination T factor
        assert_eq!(t_elim.iter().filter(|t| nonzero(t)).count(), 2 + 1);
    }

    #[test]
    fn run_ws_is_bitwise_identical_under_every_scheduler() {
        // The same DAG executed by each scheduler against a fresh state must
        // produce bit-for-bit the same tiles and T factors as the sequential
        // reference walk.
        use crate::executor::{execute_parallel_with_scheduler, SchedulerKind};
        let a = random_matrix::<f64>(24, 12, 5);
        let dag = TaskDag::build(&Algorithm::Greedy.elimination_list(6, 3), KernelFamily::TT);

        let reference = FactorizationState::new(TiledMatrix::from_dense(&a, 4));
        let mut ws = Workspace::new(4);
        for task in &dag.tasks {
            reference.run_ws(task.kind, &mut ws);
        }
        let (tiles_ref, tg_ref, te_ref) = reference.into_parts();

        for kind in SchedulerKind::ALL {
            let state = FactorizationState::new(TiledMatrix::from_dense(&a, 4));
            execute_parallel_with_scheduler(
                &dag,
                4,
                kind,
                || Workspace::<f64>::new(4),
                |task, ws| state.run_ws(task, ws),
            );
            let (tiles, tg, te) = state.into_parts();
            assert_eq!(tiles, tiles_ref, "tiles differ under {}", kind.name());
            assert_eq!(tg, tg_ref, "GEQRT T factors differ under {}", kind.name());
            assert_eq!(te, te_ref, "elim T factors differ under {}", kind.name());
        }
    }

    #[test]
    fn run_and_run_ws_agree_bitwise() {
        let a = random_matrix::<f64>(16, 8, 3);
        let dag = TaskDag::build(&Algorithm::Greedy.elimination_list(4, 2), KernelFamily::TT);

        let state_alloc = FactorizationState::new(TiledMatrix::from_dense(&a, 4));
        for task in &dag.tasks {
            state_alloc.run(task.kind);
        }
        let state_ws = FactorizationState::new(TiledMatrix::from_dense(&a, 4));
        let mut ws = Workspace::new(4);
        for task in &dag.tasks {
            state_ws.run_ws(task.kind, &mut ws);
        }
        let (tiles_a, tg_a, te_a) = state_alloc.into_parts();
        let (tiles_w, tg_w, te_w) = state_ws.into_parts();
        assert_eq!(tiles_a, tiles_w);
        assert_eq!(tg_a, tg_w);
        assert_eq!(te_a, te_w);
    }
}
