//! Deterministic fault injection for the chaos test suite
//! (`--features fault-injection`; default-off and zero-cost when disabled —
//! the probe in the task loop is compiled out entirely).
//!
//! A [`FaultPlan`] maps `(copy, task)` boundaries of a batch run to
//! [`FaultAction`]s: a `Panic` fires just before that task's kernel would
//! execute (exercising the runtime's per-item panic containment end to end),
//! a `Delay` sleeps there (exercising schedule perturbation — results must
//! stay bitwise identical, and the watchdog must tell a slow task from a
//! dead one). [`FaultPlan::seeded`] draws a reproducible schedule from the
//! in-tree xoshiro256++ PRNG, so the chaos suite replays the same hundred
//! fault scenarios on every run.
//!
//! Installation is process-global ([`FaultPlan::install`]): the returned
//! [`InstalledFaults`] guard holds a static lock for its lifetime, so
//! concurrent tests serialize instead of trampling each other's plans, and
//! dropping the guard disarms injection. The probe
//! ([`check`](crate::fault::check)) is called by the batch engines with the
//! task's `(copy, local)` coordinates; outside an installed plan it is a
//! single relaxed-ish atomic load.
//!
//! This module is test infrastructure: it injects faults only into runs of
//! the process that installed a plan, and nothing here is compiled into
//! default builds.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use crate::sync::shim::AtomicBool;
use std::time::Duration;

use tileqr_matrix::rng::Rng;

use crate::sync::{Mutex, MutexGuard};

/// What to inject at a `(copy, task)` boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic before the task's kernel runs; the runtime must contain it to
    /// the task's batch copy.
    Panic,
    /// Sleep before the task's kernel runs; the factorization must still be
    /// bitwise correct (and the watchdog must not fire for bounded delays
    /// below its stall bound).
    Delay(Duration),
}

/// A deterministic schedule of injected faults, keyed by
/// `(batch copy, local task id)`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<(usize, usize), FaultAction>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Injects a panic at `(copy, task)`.
    pub fn panic_at(mut self, copy: usize, task: usize) -> Self {
        self.faults.insert((copy, task), FaultAction::Panic);
        self
    }

    /// Injects a delay of `d` at `(copy, task)`.
    pub fn delay_at(mut self, copy: usize, task: usize, d: Duration) -> Self {
        self.faults.insert((copy, task), FaultAction::Delay(d));
        self
    }

    /// Draws a reproducible fault schedule for a batch of `copies` DAG
    /// copies of `tasks` tasks each: `panics` panicking tasks on *distinct*
    /// copies (at most one panic per copy, so each faulted item's expected
    /// error is unambiguous) plus `delays` short sleeps (50–550 µs) at
    /// random boundaries of the remaining, non-panicked copies.
    pub fn seeded(seed: u64, copies: usize, tasks: usize, panics: usize, delays: usize) -> Self {
        assert!(copies > 0 && tasks > 0, "an empty batch cannot be faulted");
        assert!(panics <= copies, "at most one panic per copy");
        let mut rng = Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        // Panicking copies: a seeded partial Fisher–Yates pick of `panics`
        // distinct copies.
        let mut ids: Vec<usize> = (0..copies).collect();
        for i in 0..panics {
            let j = i + (rng.next_u64() as usize) % (copies - i);
            ids.swap(i, j);
            let copy = ids[i];
            let task = (rng.next_u64() as usize) % tasks;
            plan.faults.insert((copy, task), FaultAction::Panic);
        }
        // Delays go to the non-panicked copies so every delayed item still
        // completes and its bitwise-identity assertion stays meaningful.
        let clean = &ids[panics..];
        if !clean.is_empty() {
            for _ in 0..delays {
                let copy = clean[(rng.next_u64() as usize) % clean.len()];
                let task = (rng.next_u64() as usize) % tasks;
                let micros = 50 + rng.next_u64() % 500;
                plan.faults
                    .entry((copy, task))
                    .or_insert(FaultAction::Delay(Duration::from_micros(micros)));
            }
        }
        plan
    }

    /// Draws a reproducible fault schedule for a **service** round
    /// ([`crate::service::QrService`]) of `items` consecutive submissions
    /// whose sequence numbers start at `base_seq`: `faulted` distinct items
    /// get *consecutive panicking attempts* — an item assigned `a` faulted
    /// attempts (drawn uniformly from `1..=max_attempts`) panics on
    /// attempts `0..a` at a random task each, keyed by the service's probe
    /// mapping ([`crate::service::probe_id`]), and runs clean from attempt
    /// `a` on. With a retry budget of `r` re-runs, items with `a ≤ r` are
    /// retried to success and items with `a > r` surface attempt `r`'s
    /// panic. The remaining items get `delays` short sleeps on their first
    /// attempt (bitwise identity must survive schedule perturbation).
    ///
    /// Returns the plan plus the per-item faulted-attempt counts as sorted
    /// `(seq, attempts)` pairs — the chaos suite's expected-outcome set.
    pub fn seeded_service(
        seed: u64,
        base_seq: u64,
        items: usize,
        tasks: usize,
        faulted: usize,
        max_attempts: u32,
        delays: usize,
    ) -> (Self, Vec<(u64, u32)>) {
        assert!(items > 0 && tasks > 0, "an empty round cannot be faulted");
        assert!(faulted <= items, "at most one fault chain per item");
        assert!(max_attempts >= 1, "a faulted item faults at least once");
        let mut rng = Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        // Faulted items: a seeded partial Fisher–Yates pick of `faulted`
        // distinct items of the round.
        let mut ids: Vec<usize> = (0..items).collect();
        let mut chains = Vec::with_capacity(faulted);
        for i in 0..faulted {
            let j = i + (rng.next_u64() as usize) % (items - i);
            ids.swap(i, j);
            let seq = base_seq + ids[i] as u64;
            let attempts = 1 + (rng.next_u64() % u64::from(max_attempts)) as u32;
            for attempt in 0..attempts {
                let task = (rng.next_u64() as usize) % tasks;
                plan.faults.insert(
                    (crate::service::probe_id(seq, attempt), task),
                    FaultAction::Panic,
                );
            }
            chains.push((seq, attempts));
        }
        // Delays go to the non-faulted items so every delayed item still
        // completes on its first attempt and its bitwise-identity assertion
        // stays meaningful.
        let clean = &ids[faulted..];
        if !clean.is_empty() {
            for _ in 0..delays {
                let seq = base_seq + clean[(rng.next_u64() as usize) % clean.len()] as u64;
                let task = (rng.next_u64() as usize) % tasks;
                let micros = 50 + rng.next_u64() % 500;
                plan.faults
                    .entry((crate::service::probe_id(seq, 0), task))
                    .or_insert(FaultAction::Delay(Duration::from_micros(micros)));
            }
        }
        chains.sort_unstable();
        (plan, chains)
    }

    /// The `(copy, task)` boundaries that panic, sorted (the chaos suite's
    /// expected-failure set).
    pub fn panics(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .faults
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Panic))
            .map(|(&k, _)| k)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of delay injections in the plan.
    pub fn delay_count(&self) -> usize {
        self.faults
            .values()
            .filter(|a| matches!(a, FaultAction::Delay(_)))
            .count()
    }

    /// Arms this plan process-wide until the returned guard is dropped.
    ///
    /// Holding the guard serializes concurrent installers (a static lock),
    /// so parallel test threads take turns instead of overwriting each
    /// other's plans.
    pub fn install(self) -> InstalledFaults {
        let serialize = INSTALL.lock();
        *PLAN.lock() = Some(self);
        ARMED.store(true, Ordering::Release);
        InstalledFaults {
            _serialize: serialize,
        }
    }
}

/// Keeps a [`FaultPlan`] armed; dropping it disarms injection and releases
/// the installation lock.
pub struct InstalledFaults {
    _serialize: MutexGuard<'static, ()>,
}

impl Drop for InstalledFaults {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        PLAN.lock().take();
    }
}

/// Serializes installations; held by [`InstalledFaults`] for its lifetime.
static INSTALL: Mutex<()> = Mutex::new(());
/// Fast-path arm flag: the probe bails on one load when no plan is active.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The active plan, if any.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// The probe the batch engines call before executing task `task` of batch
/// copy `copy`. With no installed plan this is one atomic load; with one,
/// the matching action (if any) fires *inside* the caller's containment
/// region, so an injected panic exercises exactly the code path a kernel
/// panic would.
pub(crate) fn check(copy: usize, task: usize) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    // Clone the action out before acting: panicking or sleeping while
    // holding the plan lock would stall every other worker's probe.
    let action = PLAN
        .lock()
        .as_ref()
        .and_then(|p| p.faults.get(&(copy, task)).copied());
    match action {
        Some(FaultAction::Panic) => panic!("injected fault at (copy {copy}, task {task})"),
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 4, 30, 2, 5);
        let b = FaultPlan::seeded(42, 4, 30, 2, 5);
        assert_eq!(a.panics(), b.panics());
        assert_eq!(a.delay_count(), b.delay_count());
        assert_eq!(a.panics().len(), 2);
        // At most one panic per copy, and delays never land on a panicking
        // copy.
        let panicked: Vec<usize> = a.panics().iter().map(|&(c, _)| c).collect();
        let mut distinct = panicked.clone();
        distinct.dedup();
        assert_eq!(panicked, distinct);
        for (&(copy, _), action) in &a.faults {
            if matches!(action, FaultAction::Delay(_)) {
                assert!(!panicked.contains(&copy), "delay on a panicking copy");
            }
        }
    }

    #[test]
    fn probe_is_inert_without_an_installed_plan() {
        check(0, 0); // must not panic or sleep
    }

    #[test]
    fn install_arms_and_drop_disarms() {
        let plan = FaultPlan::new().panic_at(1, 3);
        {
            let _armed = plan.install();
            let caught = std::panic::catch_unwind(|| check(1, 3));
            assert!(caught.is_err(), "armed probe must fire");
            check(0, 3); // non-matching boundary is inert
        }
        check(1, 3); // disarmed after the guard dropped
    }
}
