//! Persistent, parkable worker pool behind [`QrContext`](crate::context::QrContext).
//!
//! The scoped executor ([`crate::executor`]) spawns and joins a fresh set of
//! worker threads on every call — correct, but a stream of moderate-size
//! factorizations then pays thread startup and teardown per matrix. This
//! module provides the long-lived alternative the context API is built on:
//!
//! * `threads` workers are spawned **once** when the pool is built;
//! * between jobs they idle through the same three-tier
//!   [`Backoff`](crate::sync::Backoff) the executor uses (spin → yield →
//!   bounded park), so an idle pool consumes no CPU;
//! * a job is submitted by publishing an `Arc<dyn Job>` and bumping an
//!   epoch counter; every worker is unparked, runs `Job::run(worker_index)`,
//!   and the submitter blocks until all of them have finished. The wake-up
//!   cost is **per job, not per matrix**: the context's batch path
//!   ([`QrContext::factorize_batch`](crate::context::QrContext::factorize_batch))
//!   exists precisely so `k` small factorizations ride one epoch bump
//!   instead of `k`;
//! * a panicking job is caught on the worker, the payload is stored, and
//!   [`WorkerPool::run`] re-raises it on the submitting thread — the pool
//!   itself stays alive and can run further jobs;
//! * dropping the pool shuts the workers down and joins them.
//!
//! Jobs must be `'static` (workers are not scoped threads), which is why the
//! context wraps the per-factorization state in `Arc`s; the pool itself is
//! type-erased and knows nothing about matrices or schedulers.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sync::{Backoff, Mutex};

/// One unit of pool work: called exactly once per worker with that worker's
/// index in `0..threads`. Implementations coordinate internally — the
/// context's `BatchJob` (which also serves single factorizations as the
/// `k = 1` case) drives the shared fused-DAG scheduler from every worker.
pub(crate) trait Job: Send + Sync {
    /// Runs worker `w`'s share of the job.
    fn run(&self, w: usize);
}

/// State shared between the submitter and the workers.
struct Shared {
    /// The job being executed (present from submission until every worker
    /// finished). Workers clone the `Arc` out under the lock.
    job: Mutex<Option<Arc<dyn Job>>>,
    /// Bumped once per submission; workers run one job per observed bump.
    epoch: AtomicUsize,
    /// Number of workers that finished the current job.
    done: AtomicUsize,
    /// Set once, by `Drop`: workers exit their main loop.
    shutdown: AtomicBool,
    /// First panic payload raised by a job, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// The submitting thread, parked while it waits for `done == threads`;
    /// the last worker to finish unparks it.
    waiter: Mutex<Option<std::thread::Thread>>,
}

/// A persistent pool of `threads` parked worker threads executing one
/// [`Job`] at a time.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    /// Handles used to unpark the workers on submission and shutdown.
    wakers: Vec<std::thread::Thread>,
    joins: Vec<JoinHandle<()>>,
    /// Serializes submissions from concurrent callers sharing one context.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1) that park until a job arrives.
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            job: Mutex::new(None),
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            waiter: Mutex::new(None),
        });
        let joins: Vec<JoinHandle<()>> = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tileqr-worker-{w}"))
                    .spawn(move || worker_main(&shared, w, threads))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        let wakers = joins.iter().map(|j| j.thread().clone()).collect();
        WorkerPool {
            shared,
            wakers,
            joins,
            submit: Mutex::new(()),
        }
    }

    /// Number of worker threads.
    pub(crate) fn threads(&self) -> usize {
        self.joins.len()
    }

    /// Runs one job to completion on every worker and returns once all of
    /// them finished. Re-raises the first panic a worker caught, after the
    /// job is fully torn down — the pool remains usable either way.
    ///
    /// Concurrent callers are serialized: the pool runs one job at a time.
    pub(crate) fn run(&self, job: Arc<dyn Job>) {
        let _serialize = self.submit.lock();
        let shared = &self.shared;
        shared.done.store(0, Ordering::Relaxed);
        *shared.waiter.lock() = Some(std::thread::current());
        *shared.job.lock() = Some(job);
        // The release increment publishes the job slot write above to any
        // worker that acquires the epoch (the mutex already synchronizes the
        // slot itself; the epoch is what workers poll without the lock).
        shared.epoch.fetch_add(1, Ordering::Release);
        for t in &self.wakers {
            t.unpark();
        }
        // Wait for every worker. Workers unpark us when the last one
        // finishes; the bounded-park backoff makes a missed unpark a
        // bounded-latency event, never a deadlock.
        let threads = self.threads();
        let mut backoff = Backoff::new();
        while shared.done.load(Ordering::Acquire) < threads {
            backoff.snooze();
        }
        // Tear down: drop the pool's reference to the job (workers dropped
        // theirs before signalling done) and clear the waiter slot.
        *shared.job.lock() = None;
        shared.waiter.lock().take();
        if let Some(payload) = shared.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in &self.wakers {
            t.unpark();
        }
        for j in self.joins.drain(..) {
            // A worker body never panics outside a job (job panics are
            // caught and re-raised on the submitter), so join errors are
            // limited to catastrophic situations; ignore them on teardown.
            let _ = j.join();
        }
    }
}

/// Body of one pool worker: park until the epoch advances (or shutdown),
/// run the published job, signal completion, repeat.
fn worker_main(shared: &Shared, w: usize, threads: usize) {
    let mut seen = 0usize;
    loop {
        // Idle phase: wait for a new epoch with spin → yield → bounded park.
        let mut backoff = Backoff::new();
        let epoch = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            backoff.snooze();
        };
        seen = epoch;
        let Some(job) = shared.job.lock().clone() else {
            // Raced with teardown of a job this worker never observed
            // (possible only around shutdown); treat as spurious.
            continue;
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(w)));
        // Drop our clone *before* signalling: once `done == threads` the
        // submitter assumes it holds the only references to the job's state.
        drop(job);
        if let Err(payload) = result {
            let mut slot = shared.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == threads {
            // Unpark without `take()`: a straggler from job N reaching this
            // point after job N+1 was submitted must not consume N+1's
            // waiter registration (that would lose N+1's completion wake-up
            // and leave its submitter to the bounded-park fallback). A
            // spurious unpark of the next submitter is harmless — it
            // re-checks `done` and parks again; the submitter clears its own
            // registration during teardown.
            if let Some(waiter) = shared.waiter.lock().as_ref() {
                waiter.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountJob {
        hits: Vec<AtomicUsize>,
    }
    impl Job for CountJob {
        fn run(&self, w: usize) {
            self.hits[w].fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn every_worker_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(3);
        let job = Arc::new(CountJob {
            hits: (0..3).map(|_| AtomicUsize::new(0)).collect(),
        });
        for round in 1..=10usize {
            pool.run(job.clone());
            for h in &job.hits {
                assert_eq!(h.load(Ordering::SeqCst), round);
            }
        }
    }

    #[test]
    fn pool_survives_a_panicking_job_and_reraises_it() {
        struct Bomb;
        impl Job for Bomb {
            fn run(&self, w: usize) {
                if w == 0 {
                    panic!("boom from worker 0");
                }
            }
        }
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(Arc::new(Bomb));
        }));
        assert!(err.is_err(), "job panic must reach the submitter");
        // The pool is still functional afterwards.
        let job = Arc::new(CountJob {
            hits: (0..2).map(|_| AtomicUsize::new(0)).collect(),
        });
        pool.run(job.clone());
        assert!(job.hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn job_state_is_exclusively_owned_after_run() {
        let pool = WorkerPool::new(4);
        let job = Arc::new(CountJob {
            hits: (0..4).map(|_| AtomicUsize::new(0)).collect(),
        });
        pool.run(job.clone());
        // All worker clones and the pool's slot reference are gone.
        let job = Arc::try_unwrap(job).unwrap_or_else(|_| panic!("job uniquely owned"));
        assert!(job.hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        drop(pool); // must not hang
    }
}
