//! Persistent, parkable worker pool behind [`QrContext`](crate::context::QrContext).
//!
//! The scoped executor ([`crate::executor`]) spawns and joins a fresh set of
//! worker threads on every call — correct, but a stream of moderate-size
//! factorizations then pays thread startup and teardown per matrix. This
//! module provides the long-lived alternative the context API is built on:
//!
//! * `threads` workers are spawned **once** when the pool is built;
//! * between jobs they idle through the same three-tier
//!   [`Backoff`](crate::sync::Backoff) the executor uses (spin → yield →
//!   bounded park), so an idle pool consumes no CPU;
//! * a job is submitted by publishing an `Arc<dyn Job>` and bumping an
//!   epoch counter; every worker is unparked, runs `Job::run(worker_index)`,
//!   and the submitter blocks until all of them have finished. The wake-up
//!   cost is **per job, not per matrix**: the context's batch path
//!   ([`QrContext::factorize_batch`](crate::context::QrContext::factorize_batch))
//!   exists precisely so `k` small factorizations ride one epoch bump
//!   instead of `k`;
//! * a panicking job is caught on the worker, the payload is stored, and
//!   [`WorkerPool::run`] re-raises it on the submitting thread — the pool
//!   itself stays alive and can run further jobs. When several workers panic
//!   in one job, only the first payload can be re-raised; the rest are
//!   **counted**, and the count is surfaced in the re-raised panic instead
//!   of being dropped silently;
//! * each worker maintains a **heartbeat counter** (bumped once per retired
//!   task by the executor loop). The submitter's wait loop can observe the
//!   heartbeats through a [`RunCtl`]: if the sum stops advancing for longer
//!   than a stall bound, the watchdog triggers the job's cancel token with
//!   [`CancelCause::Stalled`] so cooperating workers abandon the job instead
//!   of hanging the submitter forever. The same poll loop enforces
//!   deadlines and forwards user cancellation — clock reads happen on the
//!   *submitting* thread, never on the per-task worker path;
//! * dropping the pool shuts the workers down and joins them.
//!
//! The watchdog is cooperative: it recovers runs whose workers are *idling*
//! without progress (the shape of a lost-task bug) and runs whose stalled
//! task eventually returns (e.g. a long sleep). A task that never returns
//! wedges its OS thread — safe Rust cannot reclaim that; the watchdog then
//! still bounds what the *other* workers do, but the submitter must wait for
//! the wedged task to come back.
//!
//! Jobs must be `'static` (workers are not scoped threads), which is why the
//! context wraps the per-factorization state in `Arc`s; the pool itself is
//! type-erased and knows nothing about matrices or schedulers.

use std::any::Any;
use std::sync::atomic::Ordering;

use crate::sync::shim::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sync::{Backoff, CancelCause, CancelToken, Mutex};

/// One unit of pool work: called exactly once per worker with that worker's
/// index in `0..threads` and the worker's own heartbeat counter (bumped by
/// the executor loop once per retired task so the submitter-side watchdog
/// can observe progress). Implementations coordinate internally — the
/// context's `BatchJob` (which also serves single factorizations as the
/// `k = 1` case) drives the shared fused-DAG scheduler from every worker.
pub(crate) trait Job: Send + Sync {
    /// Runs worker `w`'s share of the job.
    fn run(&self, w: usize, heartbeat: &AtomicUsize);
}

/// Cache-line-padded heartbeat cell: every worker bumps its own counter once
/// per task, so sharing a line between workers would turn the cheapest
/// progress signal into cross-core traffic.
#[repr(align(64))]
struct Heartbeat(AtomicUsize);

/// Submitter-side controls for one [`WorkerPool::run_controlled`] call: the
/// job's cancel token plus the conditions the wait loop polls while workers
/// run. All clock reads happen here, on the submitting thread — the workers
/// only ever pay one atomic load per task.
pub(crate) struct RunCtl {
    /// The per-job token the workers observe; deadline/stall/user-cancel all
    /// funnel into it.
    pub(crate) job_cancel: CancelToken,
    /// The context's sticky user handle; polled and forwarded into
    /// `job_cancel` so a `cancel()` from another thread interrupts the job
    /// within one wait-loop iteration (bounded by the backoff park cap).
    pub(crate) user_cancel: CancelToken,
    /// Absolute deadline; when passed, `job_cancel` triggers with
    /// [`CancelCause::DeadlineExceeded`].
    pub(crate) deadline: Option<Instant>,
    /// Watchdog bound: if `done` and every heartbeat stay unchanged for
    /// longer than this, `job_cancel` triggers with
    /// [`CancelCause::Stalled`].
    pub(crate) stall_bound: Option<Duration>,
}

/// State shared between the submitter and the workers.
struct Shared {
    /// The job being executed (present from submission until every worker
    /// finished). Workers clone the `Arc` out under the lock.
    job: Mutex<Option<Arc<dyn Job>>>,
    /// Bumped once per submission; workers run one job per observed bump.
    epoch: AtomicUsize,
    /// Number of workers that finished the current job.
    done: AtomicUsize,
    /// Set once, by `Drop`: workers exit their main loop.
    shutdown: AtomicBool,
    /// First panic payload raised by a job, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Panic payloads beyond the first within one job: only one payload can
    /// be re-raised, but the rest must not vanish without a trace.
    suppressed_panics: AtomicUsize,
    /// Per-worker progress counters, bumped once per retired task.
    heartbeats: Vec<Heartbeat>,
    /// The submitting thread, parked while it waits for `done == threads`;
    /// the last worker to finish unparks it.
    waiter: Mutex<Option<std::thread::Thread>>,
}

/// A persistent pool of `threads` parked worker threads executing one
/// [`Job`] at a time.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    /// Handles used to unpark the workers on submission and shutdown.
    wakers: Vec<std::thread::Thread>,
    joins: Vec<JoinHandle<()>>,
    /// Serializes submissions from concurrent callers sharing one context.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1) that park until a job arrives.
    ///
    /// Thread spawning can genuinely fail (resource limits); the error is
    /// returned instead of panicking, and any workers already spawned are
    /// shut down and joined before it propagates — the context maps it to
    /// [`QrError::ThreadSpawn`](crate::context::QrError::ThreadSpawn).
    pub(crate) fn new(threads: usize) -> std::io::Result<Self> {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            job: Mutex::new(None),
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            suppressed_panics: AtomicUsize::new(0),
            heartbeats: (0..threads)
                .map(|_| Heartbeat(AtomicUsize::new(0)))
                .collect(),
            waiter: Mutex::new(None),
        });
        let mut joins: Vec<JoinHandle<()>> = Vec::with_capacity(threads);
        for w in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("tileqr-worker-{w}"))
                .spawn(move || worker_main(&worker_shared, w, threads));
            match spawned {
                Ok(handle) => joins.push(handle),
                Err(e) => {
                    // Partial spawn: tear down what exists before reporting.
                    shared.shutdown.store(true, Ordering::Release);
                    for j in joins.drain(..) {
                        j.thread().unpark();
                        let _ = j.join();
                    }
                    return Err(e);
                }
            }
        }
        let wakers = joins.iter().map(|j| j.thread().clone()).collect();
        Ok(WorkerPool {
            shared,
            wakers,
            joins,
            submit: Mutex::new(()),
        })
    }

    /// Number of worker threads.
    pub(crate) fn threads(&self) -> usize {
        self.joins.len()
    }

    /// [`WorkerPool::run_controlled`] without deadline, watchdog or
    /// cancellation — the legacy shape, kept for jobs that manage their own
    /// lifetime (and for the pool's unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn run(&self, job: Arc<dyn Job>) {
        self.run_controlled(job, None);
    }

    /// Runs one job to completion on every worker and returns once all of
    /// them finished. Re-raises the first panic a worker caught, after the
    /// job is fully torn down — the pool remains usable either way; if more
    /// than one worker panicked, the re-raised panic reports how many
    /// further payloads were suppressed.
    ///
    /// With a [`RunCtl`], the wait loop additionally polls the user cancel
    /// token, the deadline and the heartbeat watchdog, funnelling whichever
    /// fires first into the job's cancel token (first cause wins). The job's
    /// workers are expected to observe that token between tasks and wind
    /// down; the submitter still waits for all of them to signal completion.
    ///
    /// Concurrent callers are serialized: the pool runs one job at a time.
    pub(crate) fn run_controlled(&self, job: Arc<dyn Job>, ctl: Option<RunCtl>) {
        let _serialize = self.submit.lock();
        let shared = &self.shared;
        shared.done.store(0, Ordering::Relaxed);
        shared.suppressed_panics.store(0, Ordering::Relaxed);
        *shared.waiter.lock() = Some(std::thread::current());
        *shared.job.lock() = Some(job);
        // The release increment publishes the job slot write above to any
        // worker that acquires the epoch (the mutex already synchronizes the
        // slot itself; the epoch is what workers poll without the lock).
        shared.epoch.fetch_add(1, Ordering::Release);
        for t in &self.wakers {
            t.unpark();
        }
        // Wait for every worker. Workers unpark us when the last one
        // finishes; the bounded-park backoff makes a missed unpark a
        // bounded-latency event, never a deadlock.
        let threads = self.threads();
        let mut backoff = Backoff::new();
        let mut watch = ctl.as_ref().map(|_| WatchState::new());
        while shared.done.load(Ordering::Acquire) < threads {
            backoff.snooze();
            if let (Some(ctl), Some(watch)) = (&ctl, &mut watch) {
                self.poll_control(ctl, watch);
            }
        }
        // Tear down: drop the pool's reference to the job (workers dropped
        // theirs before signalling done) and clear the waiter slot.
        *shared.job.lock() = None;
        shared.waiter.lock().take();
        if let Some(payload) = shared.panic.lock().take() {
            let suppressed = shared.suppressed_panics.load(Ordering::Acquire);
            if suppressed == 0 {
                std::panic::resume_unwind(payload);
            }
            // More than one worker panicked: the extra payloads cannot all
            // be re-raised, so surface their count alongside the first.
            panic!(
                "{} (+{suppressed} further worker panic{} suppressed)",
                payload_message(&*payload),
                if suppressed == 1 { "" } else { "s" },
            );
        }
    }

    /// One iteration of the submitter-side control poll: forward user
    /// cancellation, enforce the deadline, and advance the stall watchdog.
    /// Runs between backoff snoozes, so its cost is per *wait iteration*,
    /// not per task; once the job token is triggered there is nothing left
    /// to poll.
    fn poll_control(&self, ctl: &RunCtl, watch: &mut WatchState) {
        if ctl.job_cancel.is_cancelled() {
            return;
        }
        if ctl.user_cancel.is_cancelled() {
            ctl.job_cancel.trigger(CancelCause::Cancelled);
            return;
        }
        if ctl.deadline.is_none() && ctl.stall_bound.is_none() {
            return;
        }
        let now = Instant::now();
        if let Some(d) = ctl.deadline {
            if now >= d {
                ctl.job_cancel.trigger(CancelCause::DeadlineExceeded);
                return;
            }
        }
        if let Some(bound) = ctl.stall_bound {
            // The digest reads every worker's heartbeat line *while the
            // workers are writing them* — probing it on every snooze drags
            // those lines into shared state and measurably slows the workers
            // down. Probing at an eighth of the bound keeps the steady-state
            // cost off the workers' cache lines and still detects a stall
            // within ~9/8 of the configured bound.
            if now.duration_since(watch.last_probe) < bound / 8 {
                return;
            }
            watch.last_probe = now;
            let digest = self.progress_digest();
            if digest != watch.last_digest {
                watch.last_digest = digest;
                watch.last_progress = now;
            } else if now.duration_since(watch.last_progress) > bound {
                ctl.job_cancel.trigger(CancelCause::Stalled);
            }
        }
    }

    /// Wrapping sum of every worker's heartbeat plus the done count — any
    /// retired task or finished worker changes it.
    fn progress_digest(&self) -> usize {
        let mut digest = self.shared.done.load(Ordering::Acquire);
        for hb in &self.shared.heartbeats {
            digest = digest.wrapping_add(hb.0.load(Ordering::Relaxed));
        }
        digest
    }
}

/// Stall-watchdog bookkeeping of one wait loop.
struct WatchState {
    last_digest: usize,
    last_progress: Instant,
    last_probe: Instant,
}

impl WatchState {
    fn new() -> Self {
        WatchState {
            // usize::MAX cannot be a real digest sum's first observation in
            // practice, so the first poll always registers "progress" and
            // starts the stall clock from there.
            last_digest: usize::MAX,
            last_progress: Instant::now(),
            last_probe: Instant::now(),
        }
    }
}

/// Best-effort human-readable form of a panic payload (`&str` and `String`
/// payloads — everything `panic!` produces — are extracted verbatim).
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in &self.wakers {
            t.unpark();
        }
        for j in self.joins.drain(..) {
            // A worker body never panics outside a job (job panics are
            // caught and re-raised on the submitter), so join errors are
            // limited to catastrophic situations; ignore them on teardown.
            let _ = j.join();
        }
    }
}

/// Body of one pool worker: park until the epoch advances (or shutdown),
/// run the published job, signal completion, repeat.
fn worker_main(shared: &Shared, w: usize, threads: usize) {
    let mut seen = 0usize;
    loop {
        // Idle phase: wait for a new epoch with spin → yield → bounded park.
        let mut backoff = Backoff::new();
        let epoch = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            backoff.snooze();
        };
        seen = epoch;
        let Some(job) = shared.job.lock().clone() else {
            // Raced with teardown of a job this worker never observed
            // (possible only around shutdown); treat as spurious.
            continue;
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.run(w, &shared.heartbeats[w].0)
        }));
        // Drop our clone *before* signalling: once `done == threads` the
        // submitter assumes it holds the only references to the job's state.
        drop(job);
        if let Err(payload) = result {
            let mut slot = shared.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            } else {
                // Only one payload can be re-raised; count the rest so the
                // submitter can report how much was lost.
                shared.suppressed_panics.fetch_add(1, Ordering::AcqRel);
            }
        }
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == threads {
            // Unpark without `take()`: a straggler from job N reaching this
            // point after job N+1 was submitted must not consume N+1's
            // waiter registration (that would lose N+1's completion wake-up
            // and leave its submitter to the bounded-park fallback). A
            // spurious unpark of the next submitter is harmless — it
            // re-checks `done` and parks again; the submitter clears its own
            // registration during teardown.
            if let Some(waiter) = shared.waiter.lock().as_ref() {
                waiter.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountJob {
        hits: Vec<AtomicUsize>,
    }
    impl Job for CountJob {
        fn run(&self, w: usize, heartbeat: &AtomicUsize) {
            heartbeat.fetch_add(1, Ordering::Relaxed);
            self.hits[w].fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn every_worker_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(3).unwrap();
        let job = Arc::new(CountJob {
            hits: (0..3).map(|_| AtomicUsize::new(0)).collect(),
        });
        for round in 1..=10usize {
            pool.run(job.clone());
            for h in &job.hits {
                assert_eq!(h.load(Ordering::SeqCst), round);
            }
        }
    }

    #[test]
    fn pool_survives_a_panicking_job_and_reraises_it() {
        struct Bomb;
        impl Job for Bomb {
            fn run(&self, w: usize, _heartbeat: &AtomicUsize) {
                if w == 0 {
                    panic!("boom from worker 0");
                }
            }
        }
        let pool = WorkerPool::new(2).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(Arc::new(Bomb));
        }));
        assert!(err.is_err(), "job panic must reach the submitter");
        // The pool is still functional afterwards.
        let job = Arc::new(CountJob {
            hits: (0..2).map(|_| AtomicUsize::new(0)).collect(),
        });
        pool.run(job.clone());
        assert!(job.hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn multiple_worker_panics_surface_a_suppression_count() {
        struct AllBomb;
        impl Job for AllBomb {
            fn run(&self, w: usize, _heartbeat: &AtomicUsize) {
                panic!("boom from worker {w}");
            }
        }
        let pool = WorkerPool::new(3).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(Arc::new(AllBomb));
        }))
        .expect_err("all-panic job must re-raise");
        let msg = payload_message(&*err).to_string();
        assert!(
            msg.contains("+2 further worker panics suppressed"),
            "suppressed count missing from: {msg}"
        );
        assert!(
            msg.contains("boom from worker"),
            "first payload lost: {msg}"
        );
        // A clean job afterwards must not inherit the suppression count.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            struct OneBomb;
            impl Job for OneBomb {
                fn run(&self, w: usize, _heartbeat: &AtomicUsize) {
                    if w == 0 {
                        panic!("single boom");
                    }
                }
            }
            pool.run(Arc::new(OneBomb));
        }))
        .expect_err("single panic re-raises");
        assert_eq!(payload_message(&*err), "single boom");
    }

    #[test]
    fn job_state_is_exclusively_owned_after_run() {
        let pool = WorkerPool::new(4).unwrap();
        let job = Arc::new(CountJob {
            hits: (0..4).map(|_| AtomicUsize::new(0)).collect(),
        });
        pool.run(job.clone());
        // All worker clones and the pool's slot reference are gone.
        let job = Arc::try_unwrap(job).unwrap_or_else(|_| panic!("job uniquely owned"));
        assert!(job.hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = WorkerPool::new(2).unwrap();
        assert_eq!(pool.threads(), 2);
        drop(pool); // must not hang
    }

    #[test]
    fn watchdog_turns_a_stalled_job_into_a_cancellation() {
        // Worker 0 makes no progress (never bumps its heartbeat) until the
        // job token fires; the other worker finishes instantly. Without the
        // watchdog the submitter would wait on worker 0 forever.
        struct StallJob {
            cancel: CancelToken,
        }
        impl Job for StallJob {
            fn run(&self, w: usize, _heartbeat: &AtomicUsize) {
                if w == 0 {
                    while !self.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        let pool = WorkerPool::new(2).unwrap();
        let token = CancelToken::new();
        let start = Instant::now();
        pool.run_controlled(
            Arc::new(StallJob {
                cancel: token.clone(),
            }),
            Some(RunCtl {
                job_cancel: token.clone(),
                user_cancel: CancelToken::new(),
                deadline: None,
                stall_bound: Some(Duration::from_millis(20)),
            }),
        );
        assert_eq!(token.cause(), Some(CancelCause::Stalled));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog must bound the stall"
        );
        // The pool survives and serves ordinary jobs.
        let job = Arc::new(CountJob {
            hits: (0..2).map(|_| AtomicUsize::new(0)).collect(),
        });
        pool.run(job.clone());
        assert!(job.hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn deadline_fires_through_the_wait_loop() {
        struct WaitJob {
            cancel: CancelToken,
        }
        impl Job for WaitJob {
            fn run(&self, _w: usize, heartbeat: &AtomicUsize) {
                // Keep "making progress" so the watchdog (absent here)
                // cannot be what stops the job — only the deadline can.
                while !self.cancel.is_cancelled() {
                    heartbeat.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        let pool = WorkerPool::new(2).unwrap();
        let token = CancelToken::new();
        pool.run_controlled(
            Arc::new(WaitJob {
                cancel: token.clone(),
            }),
            Some(RunCtl {
                job_cancel: token.clone(),
                user_cancel: CancelToken::new(),
                deadline: Some(Instant::now() + Duration::from_millis(15)),
                stall_bound: None,
            }),
        );
        assert_eq!(token.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn user_cancellation_is_forwarded_to_the_job_token() {
        struct WaitJob {
            cancel: CancelToken,
        }
        impl Job for WaitJob {
            fn run(&self, _w: usize, _heartbeat: &AtomicUsize) {
                while !self.cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        let pool = WorkerPool::new(2).unwrap();
        let job_token = CancelToken::new();
        let user_token = CancelToken::new();
        let canceller = {
            let user = user_token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                user.cancel();
            })
        };
        pool.run_controlled(
            Arc::new(WaitJob {
                cancel: job_token.clone(),
            }),
            Some(RunCtl {
                job_cancel: job_token.clone(),
                user_cancel: user_token,
                deadline: None,
                stall_bound: None,
            }),
        );
        canceller.join().unwrap();
        assert_eq!(job_token.cause(), Some(CancelCause::Cancelled));
    }
}
