//! # tiled-qr — Tiled QR factorization algorithms
//!
//! A production-quality Rust reproduction of *"Tiled QR factorization
//! algorithms"* (Bouwmeester, Jacquelin, Langou, Robert — SC 2011 / INRIA
//! RR-7601). The workspace is split into focused crates; this facade simply
//! re-exports their public APIs so downstream users can depend on a single
//! crate:
//!
//! * [`matrix`] — dense & tiled matrix storage, `f64` / `Complex64` scalars.
//! * [`kernels`] — the six sequential tile kernels (`GEQRT`, `TSQRT`,
//!   `TTQRT`, `UNMQR`, `TSMQR`, `TTMQR`) built on Householder reflections
//!   with a compact WY representation.
//! * [`core`] — elimination lists, reduction-tree algorithms (FlatTree,
//!   Fibonacci, Greedy, Asap, Grasap, BinaryTree, PlasmaTree), the weighted
//!   task DAG, the critical-path simulator and the roofline-style
//!   performance model.
//! * [`runtime`] — a multicore dependency-counting scheduler that executes
//!   the task DAG, plus high-level drivers (factorize, apply Qᴴ, build Q,
//!   least-squares solve) and a streaming multi-tenant service layer
//!   (bounded admission, fair scheduling, load shedding, transient-fault
//!   retry).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the full
//! reproduction of the paper's tables and figures.

pub use tileqr_core as core;
pub use tileqr_kernels as kernels;
pub use tileqr_matrix as matrix;
pub use tileqr_runtime as runtime;

/// Convenience prelude re-exporting the types most programs need.
///
/// For a single factorization use [`qr_factorize`](prelude::qr_factorize);
/// services factoring a stream of matrices should hold a
/// [`QrContext`](prelude::QrContext) (persistent worker pool) plus one
/// [`QrPlan`](prelude::QrPlan) per problem shape, so repeated calls pay only
/// kernel time. Multi-tenant traffic goes through a
/// [`QrService`](prelude::QrService) in front of the context.
pub mod prelude {
    pub use tileqr_core::algorithms::Algorithm;
    pub use tileqr_core::dag::KernelFamily;
    pub use tileqr_matrix::{Complex64, Matrix, Scalar, TiledMatrix};
    pub use tileqr_runtime::context::{QrContext, QrError, QrPlan, QrReflectors};
    pub use tileqr_runtime::driver::{
        qr_factorize, qr_factorize_parallel, QrConfig, QrFactorization,
    };
    pub use tileqr_runtime::service::{
        Priority, QrClient, QrService, RetryPolicy, ServiceConfig, ServiceStats, Ticket,
    };
    pub use tileqr_runtime::solve::{
        least_squares_solve, least_squares_solve_via, least_squares_solve_with,
    };
    pub use tileqr_runtime::SchedulerKind;
}
